"""Recursive-descent parser for minij."""

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import EOF, tokenize

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


def parse_module(source):
    """Parse a compilation unit into an :class:`~repro.lang.ast.Module`."""
    return _Parser(tokenize(source)).parse_module()


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.index]

    def _at(self, kind):
        return self.current.kind == kind

    def _accept(self, kind):
        if self._at(kind):
            token = self.current
            self.index += 1
            return token
        return None

    def _expect(self, kind):
        token = self._accept(kind)
        if token is None:
            raise ParseError(
                "expected %r, found %r" % (kind, self.current.value),
                self.current.line,
                self.current.column,
            )
        return token

    def _pos(self):
        return {"line": self.current.line, "column": self.current.column}

    # -- declarations ---------------------------------------------------------

    def parse_module(self):
        decls = []
        while not self._at(EOF):
            decls.append(self._class_decl())
        return ast.Module(decls)

    def _class_decl(self):
        pos = self._pos()
        if self._accept("class"):
            kind = "class"
        elif self._accept("trait"):
            kind = "trait"
        elif self._accept("object"):
            kind = "object"
        else:
            raise ParseError(
                "expected class, trait or object, found %r" % self.current.value,
                self.current.line,
                self.current.column,
            )
        name = self._expect("ident").value
        superclass = None
        interfaces = []
        if self._accept("extends"):
            superclass = self._expect("ident").value
        if self._accept("implements"):
            interfaces.append(self._expect("ident").value)
            while self._accept(","):
                interfaces.append(self._expect("ident").value)
        self._expect("{")
        fields = []
        methods = []
        while not self._accept("}"):
            annotations = []
            while self._accept("@"):
                annotations.append(self._expect("ident").value)
            is_static = bool(self._accept("static"))
            if self._at("var"):
                if annotations:
                    raise ParseError(
                        "annotations are only valid on methods",
                        self.current.line,
                        self.current.column,
                    )
                fields.append(self._field_decl(is_static or kind == "object"))
            elif self._at("def"):
                methods.append(
                    self._method_decl(is_static or kind == "object", annotations)
                )
            else:
                raise ParseError(
                    "expected member, found %r" % self.current.value,
                    self.current.line,
                    self.current.column,
                )
        return ast.ClassDecl(kind, name, superclass, interfaces, fields, methods, **pos)

    def _field_decl(self, is_static):
        pos = self._pos()
        self._expect("var")
        name = self._expect("ident").value
        self._expect(":")
        type_name = self._type()
        self._expect(";")
        return ast.FieldDecl(name, type_name, is_static, **pos)

    def _method_decl(self, is_static, annotations):
        pos = self._pos()
        self._expect("def")
        name = self._expect("ident").value
        self._expect("(")
        params = []
        if not self._at(")"):
            params.append(self._param())
            while self._accept(","):
                params.append(self._param())
        self._expect(")")
        self._expect(":")
        return_type = self._type()
        body = None
        if self._at("{"):
            body = self._block()
        else:
            self._expect(";")
        return ast.MethodDecl(
            name, params, return_type, body, is_static, annotations, **pos
        )

    def _param(self):
        name = self._expect("ident").value
        self._expect(":")
        return (name, self._type())

    def _type(self):
        if self._accept("int"):
            base = "int"
        elif self._accept("bool"):
            base = "bool"
        elif self._accept("void"):
            return "void"
        else:
            base = self._expect("ident").value
        while self._at("[") and self.tokens[self.index + 1].kind == "]":
            self._expect("[")
            self._expect("]")
            base += "[]"
        return base

    # -- statements --------------------------------------------------------------

    def _block(self):
        pos = self._pos()
        self._expect("{")
        stmts = []
        while not self._accept("}"):
            stmts.append(self._statement())
        return ast.BlockStmt(stmts, **pos)

    def _statement(self):
        pos = self._pos()
        if self._at("{"):
            return self._block()
        if self._accept("var"):
            name = self._expect("ident").value
            self._expect(":")
            type_name = self._type()
            init = None
            if self._accept("="):
                init = self._expression()
            self._expect(";")
            return ast.VarStmt(name, type_name, init, **pos)
        if self._accept("if"):
            self._expect("(")
            condition = self._expression()
            self._expect(")")
            then_body = self._statement()
            else_body = None
            if self._accept("else"):
                else_body = self._statement()
            return ast.IfStmt(condition, then_body, else_body, **pos)
        if self._accept("while"):
            self._expect("(")
            condition = self._expression()
            self._expect(")")
            return ast.WhileStmt(condition, self._statement(), **pos)
        if self._accept("return"):
            value = None
            if not self._at(";"):
                value = self._expression()
            self._expect(";")
            return ast.ReturnStmt(value, **pos)
        expr = self._expression()
        if self._accept("="):
            value = self._expression()
            self._expect(";")
            if not isinstance(expr, (ast.NameExpr, ast.FieldExpr, ast.IndexExpr)):
                raise ParseError(
                    "invalid assignment target", pos["line"], pos["column"]
                )
            return ast.AssignStmt(expr, value, **pos)
        self._expect(";")
        return ast.ExprStmt(expr, **pos)

    # -- expressions -----------------------------------------------------------------

    def _expression(self):
        return self._binary(0)

    def _binary(self, min_precedence):
        left = self._unary()
        while True:
            op = self.current.kind
            precedence = _PRECEDENCE.get(op)
            if precedence is None or precedence < min_precedence:
                # `is` / `as` bind loosest of all postfix-ish forms.
                if min_precedence == 0 and op in ("is", "as"):
                    pos = self._pos()
                    self.index += 1
                    type_name = self._type()
                    node_type = ast.IsExpr if op == "is" else ast.AsExpr
                    left = node_type(left, type_name, **pos)
                    continue
                return left
            pos = self._pos()
            self.index += 1
            right = self._binary(precedence + 1)
            left = ast.BinaryExpr(op, left, right, **pos)

    def _unary(self):
        pos = self._pos()
        if self._accept("-"):
            return ast.UnaryExpr("-", self._unary(), **pos)
        if self._accept("!"):
            return ast.UnaryExpr("!", self._unary(), **pos)
        return self._postfix()

    def _postfix(self):
        expr = self._primary()
        while True:
            pos = self._pos()
            if self._accept("."):
                name = self._expect("ident").value
                if self._at("("):
                    args = self._arguments()
                    expr = ast.CallExpr(expr, name, args, **pos)
                else:
                    expr = ast.FieldExpr(expr, name, **pos)
            elif self._at("["):
                self._expect("[")
                index = self._expression()
                self._expect("]")
                expr = ast.IndexExpr(expr, index, **pos)
            else:
                return expr

    def _arguments(self):
        self._expect("(")
        args = []
        if not self._at(")"):
            args.append(self._expression())
            while self._accept(","):
                args.append(self._expression())
        self._expect(")")
        return args

    def _primary(self):
        pos = self._pos()
        token = self.current
        if self._at("("):
            self._expect("(")
            expr = self._expression()
            self._expect(")")
            return expr
        if token.kind == "num":
            self.index += 1
            return ast.IntLit(token.value, **pos)
        if self._accept("true"):
            return ast.BoolLit(True, **pos)
        if self._accept("false"):
            return ast.BoolLit(False, **pos)
        if self._accept("null"):
            return ast.NullLit(**pos)
        if self._accept("this"):
            return ast.ThisExpr(**pos)
        if self._accept("super"):
            self._expect(".")
            name = self._expect("ident").value
            args = self._arguments()
            call = ast.CallExpr(ast.SuperExpr(**pos), name, args, **pos)
            return call
        if self._accept("new"):
            if self._at("int") or self._at("bool"):
                elem = "int"
                self.index += 1
            else:
                elem = self._expect("ident").value
            if self._accept("["):
                # new T[len] (possibly of array-of-array type T[][]).
                length = self._expression()
                self._expect("]")
                while self._at("[") and self.tokens[self.index + 1].kind == "]":
                    self._expect("[")
                    self._expect("]")
                    elem += "[]"
                return ast.NewArrayExpr(elem, length, **pos)
            args = self._arguments() if self._at("(") else []
            node = ast.NewExpr(elem, args, **pos)
            node.has_ctor = bool(args) or True  # resolver decides
            return node
        if self._accept("fun"):
            self._expect("(")
            params = []
            if not self._at(")"):
                params.append(self._param())
                while self._accept(","):
                    params.append(self._param())
            self._expect(")")
            self._expect(":")
            return_type = self._type()
            if self._accept("=>"):
                body = ast.ReturnStmt(self._expression(), **pos)
                if return_type == "void":
                    body = ast.ExprStmt(body.value, **pos)
                body = ast.BlockStmt([body], **pos)
            else:
                body = self._block()
            return ast.LambdaExpr(params, return_type, body, **pos)
        if token.kind == "ident":
            self.index += 1
            if self._at("("):
                args = self._arguments()
                return ast.CallExpr(None, token.value, args, **pos)
            return ast.NameExpr(token.value, **pos)
        raise ParseError(
            "unexpected token %r" % (token.value,), token.line, token.column
        )
