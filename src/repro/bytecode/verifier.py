"""Structural bytecode verification.

The verifier proves, per method, the properties the interpreter and the
SSA builder rely on without re-checking them:

- every jump target is a valid instruction index;
- execution cannot run off the end of the code;
- the operand stack has a consistent depth at every program point
  (a merge point reached with two different depths is rejected);
- the stack never underflows and local slots stay within ``max_locals``;
- referenced classes, fields and methods resolve;
- a method declared to return a value returns one on every path.

This is a depth-consistency verifier (like the JVM's pre-inference
verifier), not a full type checker: minij's resolver guarantees
well-typedness at the source level, and hand-written bytecode is used
only in tests.
"""

from repro.bytecode.opcodes import (
    Op,
    is_branch,
    is_terminator,
    stack_effect,
)
from repro.errors import VerifyError


def verify_program(program):
    """Verify every concrete method in *program*; returns method count."""
    count = 0
    for method in program.methods_iter():
        if not method.is_abstract and not method.is_native:
            verify_method(method, program)
            count += 1
    return count


def verify_method(method, program):
    """Verify one method against its enclosing *program*."""
    code = method.code
    if not code:
        raise VerifyError("%s: empty body" % method.qualified_name)
    last = code[-1]
    if not is_terminator(last.op):
        raise VerifyError(
            "%s: execution can run off the end" % method.qualified_name
        )
    _check_operands(method, program)
    _check_stack_depths(method, program)


def _check_operands(method, program):
    code = method.code
    for index, instr in enumerate(code):
        op = instr.op
        if is_branch(op):
            target = instr.target
            if not isinstance(target, int) or not (0 <= target < len(code)):
                raise VerifyError(
                    "%s@%d: bad branch target %r"
                    % (method.qualified_name, index, target)
                )
        elif op in (Op.LOAD, Op.STORE):
            slot = instr.args[0]
            if not (0 <= slot < method.max_locals):
                raise VerifyError(
                    "%s@%d: local slot %d out of range"
                    % (method.qualified_name, index, slot)
                )
        elif op in (Op.NEW, Op.INSTANCEOF, Op.CHECKCAST):
            name = instr.args[0]
            base = name
            while base.endswith("[]"):
                base = base[:-2]
            if base != "int" and not program.has_class(base):
                raise VerifyError(
                    "%s@%d: unknown class %r"
                    % (method.qualified_name, index, name)
                )
            if op == Op.NEW and name != base:
                raise VerifyError(
                    "%s@%d: NEW of array type %r"
                    % (method.qualified_name, index, name)
                )
            if op == Op.NEW:
                klass = program.klass(base)
                if klass.is_interface or klass.is_abstract:
                    raise VerifyError(
                        "%s@%d: cannot instantiate %s"
                        % (method.qualified_name, index, name)
                    )
        elif op in (Op.GETFIELD, Op.PUTFIELD, Op.GETSTATIC, Op.PUTSTATIC):
            cname, fname = instr.args
            _, field = program.lookup_field(cname, fname)
            wants_static = op in (Op.GETSTATIC, Op.PUTSTATIC)
            if field.is_static != wants_static:
                raise VerifyError(
                    "%s@%d: static/instance field mismatch for %s.%s"
                    % (method.qualified_name, index, cname, fname)
                )
        elif op in (
            Op.INVOKESTATIC,
            Op.INVOKEVIRTUAL,
            Op.INVOKEINTERFACE,
            Op.INVOKESPECIAL,
        ):
            cname, mname = instr.args
            callee = program.lookup_method(cname, mname)
            if op == Op.INVOKESTATIC and not callee.is_static:
                raise VerifyError(
                    "%s@%d: INVOKESTATIC on instance method %s.%s"
                    % (method.qualified_name, index, cname, mname)
                )
            if op != Op.INVOKESTATIC and callee.is_static:
                raise VerifyError(
                    "%s@%d: instance invoke on static method %s.%s"
                    % (method.qualified_name, index, cname, mname)
                )


def _check_stack_depths(method, program):
    code = method.code
    depths = [None] * len(code)
    work = [(0, 0)]
    while work:
        index, depth = work.pop()
        while True:
            if index >= len(code):
                raise VerifyError(
                    "%s: fell off the end" % method.qualified_name
                )
            known = depths[index]
            if known is not None:
                if known != depth:
                    raise VerifyError(
                        "%s@%d: inconsistent stack depth (%d vs %d)"
                        % (method.qualified_name, index, known, depth)
                    )
                break
            depths[index] = depth
            instr = code[index]
            pops, pushes = stack_effect(instr.op, instr, program)
            if depth < pops:
                raise VerifyError(
                    "%s@%d: stack underflow (%d < %d)"
                    % (method.qualified_name, index, depth, pops)
                )
            depth = depth - pops + pushes
            op = instr.op
            if op == Op.RET:
                if method.returns_value():
                    raise VerifyError(
                        "%s@%d: RET in a value-returning method"
                        % (method.qualified_name, index)
                    )
                break
            if op == Op.RETV:
                if not method.returns_value():
                    raise VerifyError(
                        "%s@%d: RETV in a void method"
                        % (method.qualified_name, index)
                    )
                break
            if op == Op.GOTO:
                index = instr.target
                continue
            if op == Op.IF:
                work.append((instr.target, depth))
            index += 1
