"""InlinerParams construction, scaling and copying."""

import pytest

from repro.core.params import InlinerParams


class TestDefaults:
    def test_paper_values(self):
        params = InlinerParams()
        assert params.p1 == 1e-3
        assert params.p2 == 1e-4
        assert params.b1 == 0.5
        assert params.b2 == 10.0
        assert params.r1 == 3000.0
        assert params.r2 == 500.0
        assert params.t1 == 0.005
        assert params.t2 == 120.0
        assert params.max_typeswitch_targets == 3
        assert params.min_target_probability == 0.10
        assert params.max_root_size == 50_000
        assert params.recursion_free_depth == 2


class TestScaling:
    def test_size_typed_constants_scale(self):
        params = InlinerParams.scaled(0.1)
        assert params.r1 == pytest.approx(300.0)
        assert params.r2 == pytest.approx(50.0)
        assert params.t2 == pytest.approx(12.0)
        assert params.max_root_size == 5000

    def test_ratio_typed_constants_do_not(self):
        params = InlinerParams.scaled(0.1)
        assert params.t1 == 0.005
        assert params.b1 == 0.5
        assert params.b2 == 10.0

    def test_density_constants_scale_inversely(self):
        params = InlinerParams.scaled(0.1)
        assert params.p1 == pytest.approx(1e-2)
        assert params.p2 == pytest.approx(1e-3)

    def test_overrides(self):
        params = InlinerParams.scaled(0.1, t1=0.02, max_rounds=3)
        assert params.t1 == 0.02
        assert params.max_rounds == 3

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError):
            InlinerParams.scaled(0.1, warp_drive=9)


class TestCopy:
    def test_copy_is_independent(self):
        original = InlinerParams()
        clone = original.copy(t1=0.5)
        assert clone.t1 == 0.5
        assert original.t1 == 0.005
        assert clone.r1 == original.r1

    def test_copy_rejects_unknown(self):
        with pytest.raises(TypeError):
            InlinerParams().copy(nope=1)
