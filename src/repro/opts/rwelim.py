"""Read/write elimination.

The paper applies read-write elimination to the root method at the end
of every inlining round because it "partially restor[es] the method
receiver type information that is lost when writing values to memory
(and later reading the same values)" (§IV, Other optimizations).

This implementation is a per-block forward walk that tracks known
memory contents symbolically:

- a load of ``obj.f`` after a store ``obj.f = v`` (same SSA object node,
  no intervening kill) is replaced by ``v`` — recovering ``v``'s precise
  stamp, which is the type-restoration effect the paper wants;
- repeated loads of the same location collapse;
- loads from a freshly allocated object with no intervening store
  fold to the default value (0 / null);
- a store overwritten by another store to the same location with no
  intervening read or kill is removed (dead store elimination);
- calls kill everything; a store to field ``f`` kills other objects'
  ``f`` entries (no alias analysis beyond SSA identity).

Dead-store elimination additionally respects **precise exceptions**: a
node that can trap (DIV/REM with a possibly-zero divisor, array
accesses, casts, field accesses through a possibly-null receiver) acts
as a barrier — a store before the barrier is observable whenever the
trap fires and the iteration's heap state escapes (e.g. via a static),
so it must not be deleted by a store after the barrier.  Static stores
are a second, subtler barrier: they are observable effects themselves,
so a *possibly-trapping* store must not be deleted across one (the
interpreter would trap before the static store, the compiled code
after it).  Load forwarding needs no such barrier: a forwarded load is
dominated by an access to the same object that already proved the
receiver non-null (or trapped in every tier).
"""

from repro.bytecode import types as bt
from repro.ir import nodes as n


def _may_trap(node):
    """Can executing *node* raise a guest trap?"""
    t = type(node)
    if t is n.BinOpNode:
        return not node.is_pure  # DIV/REM with a possibly-zero divisor
    if t in (n.LoadFieldNode, n.StoreFieldNode):
        return not node.inputs[0].stamp.non_null
    return t in (
        n.ArrayLoadNode,
        n.ArrayStoreNode,
        n.ArrayLengthNode,
        n.NewArrayNode,
        n.CheckCastNode,
        # A guard transfers to the interpreter on failure; eliminating a
        # store across it would resume the rebuilt frame with stale heap
        # state, so it is a barrier exactly like a trapping node.
        n.GuardNode,
    )


def read_write_elimination(graph, program):
    """Run RWE over every block; returns (loads_eliminated, stores_removed)."""
    loads = 0
    stores = 0
    for block in graph.blocks:
        a, b = _process_block(graph, program, block)
        loads += a
        stores += b
    return loads, stores


def _default_const(graph, block, index, field_type):
    if field_type == bt.INT:
        node = graph.register(n.ConstIntNode(0))
    else:
        node = graph.register(n.ConstNullNode())
    block.insert(index, node)
    return node


def _process_block(graph, program, block):
    # (object node, field name) -> value node for fields;
    # ("static", class, field) -> value; (array, index) -> value.
    known = {}
    last_store = {}
    fresh = set()  # New nodes allocated in this block, still un-escaped
    loads = 0
    stores = 0
    index = 0
    while index < len(block.instrs):
        node = block.instrs[index]
        t = type(node)
        if (
            _may_trap(node)
            and t is not n.LoadFieldNode
            and t is not n.StoreFieldNode
        ):
            # Trap barrier: earlier stores become observable if this
            # node aborts the iteration.  Field ops handle their own
            # barrier below (they may instead be eliminated/recorded).
            last_store.clear()
        if t is n.NewNode:
            fresh.add(node)
        elif t is n.LoadFieldNode:
            key = (node.inputs[0], node.field_name)
            value = known.get(key)
            if value is None and node.inputs[0] in fresh:
                _, field = program.lookup_field(node.class_name, node.field_name)
                value = _default_const(graph, block, index, field.type)
                index += 1  # account for the inserted constant
            if value is not None:
                graph.replace_uses(node, value)
                node.clear_inputs()
                block.instrs.remove(node)
                node.block = None
                loads += 1
                last_store.pop(key, None)
                continue  # do not advance; same index now holds the next node
            known[key] = node
            if _may_trap(node):
                last_store.clear()  # a kept load may trap: barrier
            else:
                last_store.pop(key, None)  # the location was read
        elif t is n.StoreFieldNode:
            obj, value = node.inputs
            key = (obj, node.field_name)
            previous = last_store.get(key)
            if previous is not None and previous.block is block:
                # Safe despite traps: any barrier between the two
                # stores cleared last_store, and the pair shares one
                # receiver, so this store traps exactly when the
                # removed one would have.
                previous.clear_inputs()
                block.instrs.remove(previous)
                previous.block = None
                index -= 1
                stores += 1
            if _may_trap(node):
                last_store.clear()  # barrier for stores to other keys
            # Kill possibly aliasing entries (same field, other object).
            for other_key in list(known):
                if (
                    len(other_key) == 2
                    and other_key[1] == node.field_name
                    and other_key[0] is not obj
                    and other_key[0] not in fresh
                ):
                    del known[other_key]
            known[key] = value
            last_store[key] = node
            if value in fresh:
                fresh.discard(value)  # stored somewhere: escaped
        elif t is n.LoadStaticNode:
            key = ("static", node.class_name, node.field_name)
            value = known.get(key)
            if value is not None:
                graph.replace_uses(node, value)
                node.clear_inputs()
                block.instrs.remove(node)
                node.block = None
                loads += 1
                continue
            known[key] = node
        elif t is n.StoreStaticNode:
            key = ("static", node.class_name, node.field_name)
            known[key] = node.inputs[0]
            if node.inputs[0] in fresh:
                fresh.discard(node.inputs[0])
            # A static store is observable even when a later trap
            # aborts the iteration: a field store that might itself
            # trap must therefore keep its position relative to it.
            for stale in [
                k for k, store in last_store.items() if _may_trap(store)
            ]:
                del last_store[stale]
        elif t is n.ArrayLoadNode:
            key = ("array", node.inputs[0], node.inputs[1])
            value = known.get(key)
            if value is not None:
                graph.replace_uses(node, value)
                node.clear_inputs()
                block.instrs.remove(node)
                node.block = None
                loads += 1
                continue
            known[key] = node
        elif t is n.ArrayStoreNode:
            array, idx, value = node.inputs
            for other_key in list(known):
                if other_key[0] == "array":
                    del known[other_key]
            known[("array", array, idx)] = value
            if value in fresh:
                fresh.discard(value)
        elif t is n.InvokeNode:
            known.clear()
            last_store.clear()
            fresh.clear()
        index += 1
    return loads, stores
