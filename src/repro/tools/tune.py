"""Parameter tuning by grid search, as the paper did (§IV).

"All the parameters used in our implementation were tuned by doing an
exhaustive search over ranges of values that we defined manually based
on our intuition. In the tuning process, we selected the parameter
configuration that resulted in the best peak performance across all
benchmarks, but at the same time did not cause more than a 5% slowdown
on any benchmark with respect to the existing inliners in Graal."

This tool reruns that process on the simulated substrate: it sweeps a
grid over (r1, r2, t1, t2), scores each configuration by geomean
steady-state cycles over the chosen benchmarks, rejects configurations
that regress any benchmark by more than ``--max-regression`` versus the
greedy baseline, and prints the ranking.

Example::

    python -m repro.tools.tune --benchmarks pmd factorie --instances 1
"""

import argparse
import itertools
import math

from repro.baselines import GreedyInliner
from repro.core import IncrementalInliner, InlinerParams
from repro.bench.measurement import measure_benchmark
from repro.bench.suite import get_benchmark

#: Default grid, in paper units (scaled by --size-factor like
#: everything else). Deliberately small so the default run is minutes,
#: not hours; widen per axis as needed.
DEFAULT_GRID = {
    "r1": [1500.0, 3000.0, 4500.0],
    "r2": [250.0, 500.0],
    "t1": [0.001, 0.005, 0.02],
    "t2": [60.0, 120.0, 240.0],
}


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def evaluate(benchmarks, factory, instances, label):
    """Steady cycles per benchmark under one policy factory."""
    results = {}
    for name in benchmarks:
        spec = get_benchmark(name)
        measurement = measure_benchmark(
            spec.load(),
            factory,
            benchmark_name=name,
            config_name=label,
            instances=instances,
            iterations=spec.iterations,
            jit_config_factory=spec.jit_config_factory,
        )
        results[name] = measurement.mean_cycles
    return results


def sweep(benchmarks, grid, size_factor, instances, max_regression, log=print):
    """Run the grid; returns (ranked configurations, baseline results)."""
    baseline = evaluate(benchmarks, GreedyInliner, instances, "greedy")
    log("greedy baseline: %s" % {k: int(v) for k, v in baseline.items()})
    axes = sorted(grid)
    ranked = []
    for values in itertools.product(*(grid[axis] for axis in axes)):
        assignment = dict(zip(axes, values))

        def factory(assignment=assignment):
            params = InlinerParams.scaled(
                size_factor,
                r1=assignment["r1"] * size_factor,
                r2=assignment["r2"] * size_factor,
                t1=assignment["t1"],
                t2=assignment["t2"] * size_factor,
            )
            return IncrementalInliner(params)

        results = evaluate(benchmarks, factory, instances, str(assignment))
        score = geomean(list(results.values()))
        worst_regression = max(
            results[name] / baseline[name] for name in benchmarks
        )
        admissible = worst_regression <= 1.0 + max_regression
        ranked.append((score, worst_regression, admissible, assignment))
        log(
            "%s  geomean=%.0f  worst-vs-greedy=%.2f%s"
            % (
                assignment,
                score,
                worst_regression,
                "" if admissible else "  (REJECTED: regression)",
            )
        )
    ranked.sort(key=lambda entry: (not entry[2], entry[0]))
    return ranked, baseline


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.tools.tune", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--benchmarks", nargs="+", default=["pmd", "factorie", "scalariform"]
    )
    parser.add_argument("--instances", type=int, default=1)
    parser.add_argument("--size-factor", type=float, default=0.1)
    parser.add_argument(
        "--max-regression", type=float, default=0.05,
        help="paper rule: reject configs that slow any benchmark by more "
        "than this fraction vs the greedy baseline (default 0.05)",
    )
    parser.add_argument(
        "--axis", action="append", default=[], metavar="NAME=V1,V2,...",
        help="override one grid axis, e.g. --axis t1=0.001,0.01",
    )
    args = parser.parse_args(argv)

    grid = {name: list(values) for name, values in DEFAULT_GRID.items()}
    for override in args.axis:
        name, _, values = override.partition("=")
        if name not in grid:
            parser.error("unknown axis %r (have %s)" % (name, sorted(grid)))
        grid[name] = [float(v) for v in values.split(",")]

    ranked, _ = sweep(
        args.benchmarks, grid, args.size_factor, args.instances,
        args.max_regression,
    )
    print("\nbest admissible configurations:")
    for score, worst, admissible, assignment in ranked[:5]:
        print(
            "  %s  geomean=%.0f  worst-vs-greedy=%.2f%s"
            % (assignment, score, worst, "" if admissible else " (rejected)")
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
