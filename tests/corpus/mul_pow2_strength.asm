# entry: Main.main
# pinned: MUL strength reduction for commuted and negative power-of-two
# constants (8 * x, x * -4, x * INT64_MIN), which the canonicalizer
# rewrites to shifts/negations — results must match plain MUL in the
# interpreter.
abstract class Main {
  static field s0: int
  static method main() -> int {
    CONST 7
    PUTSTATIC Main s0
    GETSTATIC Main s0
    CONST 8
    MUL
    CONST -4
    GETSTATIC Main s0
    MUL
    ADD
    GETSTATIC Main s0
    CONST -9223372036854775808
    MUL
    ADD
    RETV
  }
}
