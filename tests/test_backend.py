"""Backend tests: lowering (phi moves, stubs), machine execution, cost
model and instruction-cache model."""

import pytest

from repro.backend import CostModel, ICacheModel, lower_graph
from repro.backend import machine as m
from repro.bytecode import MethodBuilder
from repro.errors import DivisionByZeroTrap
from repro.ir import build_graph
from repro.ir import nodes as n
from tests.execution import compare_tiers, execute_graph
from tests.helpers import fresh_program, shapes_program, single_method_program


class TestLowering:
    def test_block_cost_prefix(self):
        def build(b):
            b.load(0).load(0).mul().retv()

        program = single_method_program(build)
        graph = build_graph(program.lookup_method("T", "f"), program)
        code = lower_graph(graph)
        assert code.instrs[0][0] == m.M_COST
        assert code.instrs[0][1] > 0
        assert code.size == len(code.instrs)

    def test_listing_smoke(self):
        program = shapes_program()
        graph = build_graph(program.lookup_method("Main", "run"), program)
        code = lower_graph(graph)
        listing = code.listing()
        assert "CALL" in listing or "VCALL" in listing

    def test_phi_moves_on_edges(self):
        def build(b):
            other = b.new_label()
            join = b.new_label()
            b.load(0).if_true(other)
            b.const(10).store(1).goto(join)
            b.place(other).const(20).store(1)
            b.place(join).load(1).retv()

        program = single_method_program(build)
        for arg, expected in [(0, 10), (1, 20)]:
            compare_tiers(program, "T", "f", [arg])

    def test_swap_cycle_parallel_copy(self):
        # A loop that swaps two phis each iteration: requires the
        # cycle-breaking scratch register to lower correctly.
        def build(b):
            loop = b.new_label()
            done = b.new_label()
            a = b.alloc_local()
            c = b.alloc_local()
            i = b.alloc_local()
            b.const(1).store(a).const(2).store(c).const(0).store(i)
            b.place(loop).load(i).load(0).ge().if_true(done)
            # swap a and c via a temp local, creating phi cycles
            tmp = b.alloc_local()
            b.load(a).store(tmp)
            b.load(c).store(a)
            b.load(tmp).store(c)
            b.load(i).const(1).add().store(i)
            b.goto(loop)
            b.place(done).load(a).const(10).mul().load(c).add().retv()

        program = single_method_program(build)
        for count, expected in [(0, 12), (1, 21), (2, 12), (5, 21)]:
            result = compare_tiers(program, "T", "f", [count])
            assert result == expected

    def test_loop_execution(self):
        def build(b):
            loop = b.new_label()
            done = b.new_label()
            acc = b.alloc_local()
            b.const(0).store(acc)
            b.place(loop).load(0).const(0).le().if_true(done)
            b.load(acc).load(0).add().store(acc)
            b.load(0).const(1).sub().store(0)
            b.goto(loop)
            b.place(done).load(acc).retv()

        program = single_method_program(build)
        assert compare_tiers(program, "T", "f", [10]) == 55


class TestMachineSemantics:
    def test_whole_shapes_program(self):
        from tests.helpers import SHAPES_RESULT

        program = shapes_program()
        graph = build_graph(program.lookup_method("Main", "run"), program)
        result, _ = execute_graph(graph, program)
        assert result == SHAPES_RESULT

    def test_division_trap(self):
        def build(b):
            b.load(0).load(1).div().retv()

        program = single_method_program(build, params=("int", "int"))
        graph = build_graph(program.lookup_method("T", "f"), program)
        with pytest.raises(DivisionByZeroTrap):
            execute_graph(graph, program, [1, 0])

    def test_cycle_accounting(self):
        def build(b):
            b.load(0).load(0).mul().retv()

        program = single_method_program(build)
        graph = build_graph(program.lookup_method("T", "f"), program)
        from tests.execution import _NullSink
        from repro.backend.machine import MachineExecutor
        from repro.interp import Interpreter
        from repro.runtime import VMState

        vm = VMState(program)
        sink = _NullSink()
        executor = MachineExecutor(vm, Interpreter(vm).execute, sink)
        code = lower_graph(graph)
        executor.execute(code, [3])
        assert sink.cycles >= code.entry_cost

    def test_intrinsic_called_natively(self):
        def build(b):
            b.load(0).invokestatic("Builtins", "abs").retv()

        program = single_method_program(build)
        graph = build_graph(program.lookup_method("T", "f"), program)
        result, _ = execute_graph(graph, program, [-9])
        assert result == 9


class TestCostModel:
    def test_call_kind_ordering(self):
        cost = CostModel()
        assert cost.call_cost("static") < cost.call_cost("virtual")
        assert cost.call_cost("virtual") < cost.call_cost("interface")
        assert cost.call_cost("direct") == cost.call_cost("static")

    def test_node_costs(self):
        cost = CostModel()
        add = n.BinOpNode("ADD", n.ConstIntNode(1), n.ConstIntNode(2))
        assert cost.node_cost(add) == cost.ARITHMETIC
        assert cost.node_cost(n.NewNode("X")) == cost.ALLOC_OBJECT
        assert cost.node_cost(n.ConstIntNode(5)) == 0

    def test_interpreter_gap(self):
        cost = CostModel()
        assert cost.INTERPRETED_OP > 10 * cost.ARITHMETIC

    def test_compile_cost_scales(self):
        cost = CostModel()
        assert cost.compile_cost(100) < cost.compile_cost(1000)


class TestICache:
    def test_no_penalty_under_capacity(self):
        icache = ICacheModel(capacity=1000, penalty=50)
        assert icache.entry_penalty(999) == 0
        assert icache.entry_penalty(1000) == 0

    def test_penalty_grows_with_excess(self):
        icache = ICacheModel(capacity=1000, penalty=50)
        small = icache.entry_penalty(1500)
        large = icache.entry_penalty(3000)
        assert 0 < small < large

    def test_penalty_saturates(self):
        icache = ICacheModel(capacity=1000, penalty=50, max_ratio=2.0)
        assert icache.entry_penalty(10_000) == icache.entry_penalty(100_000)
