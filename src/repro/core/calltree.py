"""The partial call tree (§III-A).

Each node represents a *callsite* (not a method): the same method called
from two places gets two independent nodes, each holding its own
specialized IR copy — the property that makes callsite specialization
and deep inlining trials possible and that a call graph cannot provide
(§III-A, "Rationale").

Node kinds (Listing 2 and §IV):

====  ======================================================================
``E``  expanded — the specialized IR of the callee is attached
``C``  cutoff — known target, not yet expanded
``D``  deleted — the callsite was removed by an optimization
``G``  generic/opaque — cannot be inlined (native, megamorphic, unknown)
``P``  polymorphic — dispatched callsite with a usable receiver profile;
       children are the speculated targets
====  ======================================================================

The subtree metrics of §IV:

- S_irn(n) = Σ_{m ∈ subtree(n)} |ir(m)|            (Eq. 1)
- S_b(n)   = Σ_{m ∈ subtree(n), kind=C} |ir(m)|    (Eq. 2)
- N_c(n)   = #{m ∈ subtree(n) : kind=C}            (Eq. 3)
"""

from repro.errors import ReproError


class NodeKind:
    EXPANDED = "E"
    CUTOFF = "C"
    DELETED = "D"
    GENERIC = "G"
    POLYMORPHIC = "P"
    #: Bookkeeping kind (not in the paper's Listing 2): the node's body
    #: has been substituted into the root; its IR now lives there, so
    #: the node contributes 0 to the subtree size metrics while its
    #: children remain addressable callsites.
    INLINED = "I"


class CallNode:
    """One callsite in the partial call tree.

    Attributes:
        kind: one of :class:`NodeKind`.
        parent: the enclosing :class:`CallNode` (None for the root).
        children: child callsites, discovered at expansion.
        invoke: the :class:`~repro.ir.nodes.InvokeNode` this node
            represents, living in the parent's current graph. For the
            root, None. The pointer stays valid across inlining because
            :meth:`~repro.ir.graph.Graph.inline_call` transplants nodes.
        method: resolved target method (C/E nodes; None for P/G).
        graph: the specialized IR copy (root and E nodes).
        frequency: f(n), execution frequency relative to the root.
        probability: for children of P nodes, the profile probability
            p_m of dispatching here (1.0 otherwise).
        trial_opt_count: simple optimizations triggered by deep trials
            (N_s for E nodes, Eq. 4).
        concrete_arg_count: arguments more concrete than the formal
            parameters (N_s for C nodes, Eq. 4).
        queue: children currently considered for expansion (Listing 3).
        expand_declined: the adaptive expansion threshold said no this
            round; cleared when a new round starts.
    """

    __slots__ = (
        "kind",
        "parent",
        "children",
        "invoke",
        "method",
        "graph",
        "frequency",
        "probability",
        "trial_opt_count",
        "concrete_arg_count",
        "queue",
        "expand_declined",
        "inlined_flag",
        "tuple_benefit",
        "tuple_cost",
        "front",
        "_size_estimate",
        "receiver_type",
    )

    def __init__(self, kind, parent, invoke, method, frequency=1.0, probability=1.0):
        self.kind = kind
        self.parent = parent
        self.children = []
        self.invoke = invoke
        self.method = method
        self.graph = None
        self.frequency = frequency
        self.probability = probability
        self.trial_opt_count = 0
        self.concrete_arg_count = 0
        self.queue = []
        self.expand_declined = False
        # Analysis state (Listing 6).
        self.inlined_flag = False
        self.tuple_benefit = 0.0
        self.tuple_cost = 1.0
        self.front = []
        self._size_estimate = None
        self.receiver_type = None  # for children of P nodes

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def is_root(self):
        return self.parent is None

    def add_child(self, child):
        self.children.append(child)
        return child

    def mark_deleted(self):
        self.kind = NodeKind.DELETED
        self.children = []
        self.queue = []
        self.graph = None

    def check_deleted(self):
        """Demote to D if the callsite was optimized away."""
        if (
            not self.is_root
            and self.kind != NodeKind.DELETED
            and (self.invoke is None or self.invoke.block is None)
        ):
            self.mark_deleted()
        return self.kind == NodeKind.DELETED

    def ancestors(self):
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def recursion_depth(self):
        """d(n): how many ancestors target the same method (Eq. 14)."""
        if self.method is None:
            return 0
        depth = 0
        for ancestor in self.ancestors():
            if ancestor.method is self.method:
                depth += 1
        return depth

    def subtree(self):
        """All nodes below and including this one (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    # ------------------------------------------------------------------
    # Sizes and metrics
    # ------------------------------------------------------------------

    def ir_size(self):
        """|ir(n)|: graph node count for E nodes and the root; a
        bytecode-based estimate for cutoffs; the typeswitch footprint
        for P nodes; 0 for D/G."""
        if self.graph is not None:
            return self.graph.node_count()
        if self.kind == NodeKind.POLYMORPHIC:
            return 2 * max(1, len(self.children))
        if self.kind in (NodeKind.DELETED, NodeKind.GENERIC, NodeKind.INLINED):
            return 0
        if self.method is not None:
            if self._size_estimate is None:
                self._size_estimate = max(1, len(self.method.code))
            return self._size_estimate
        return 0

    def s_irn(self):
        """Eq. 1: total IR size in this subtree."""
        return sum(node.ir_size() for node in self.subtree())

    def s_b(self):
        """Eq. 2: total IR size of cutoff nodes in this subtree."""
        return sum(
            node.ir_size()
            for node in self.subtree()
            if node.kind == NodeKind.CUTOFF
        )

    def n_c(self):
        """Eq. 3: number of cutoff nodes in this subtree."""
        return sum(1 for node in self.subtree() if node.kind == NodeKind.CUTOFF)

    # ------------------------------------------------------------------

    def describe(self, depth=0):
        """An indented dump of the subtree (mirrors the paper's figures)."""
        if self.is_root:
            label = "root %s" % (self.graph.name if self.graph else "?")
        else:
            name = (
                self.method.qualified_name
                if self.method is not None
                else "%s.%s"
                % (
                    self.invoke.declared_class if self.invoke else "?",
                    self.invoke.method_name if self.invoke else "?",
                )
            )
            label = "%s %s f=%.2f" % (self.kind, name, self.frequency)
        lines = ["  " * depth + label]
        for child in self.children:
            lines.extend(child.describe(depth + 1))
        return lines if depth else "\n".join(lines)

    def __repr__(self):
        name = self.method.qualified_name if self.method else "<root/poly>"
        return "<CallNode %s %s>" % (self.kind, name)


def make_root(graph):
    """The root call-tree node for a compilation request (Listing 1)."""
    if graph is None:
        raise ReproError("root graph required")
    root = CallNode(NodeKind.EXPANDED, None, None, graph.method)
    root.graph = graph
    root.frequency = 1.0
    return root
