"""Figure/table regenerators for the paper's evaluation (see DESIGN.md)."""
