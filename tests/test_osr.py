"""On-stack replacement at loop backedges.

The OSR contract mirrors every other fast path in this VM: observables
(return values, traps, printed output) are bit-identical with OSR on or
off — only the tier that executes the loop changes. These tests pin the
transfer itself (a frame demonstrably finishes inside compiled code
mid-method), the state mapping (locals *and* a live operand stack),
the deopt fallback out of OSR code, failure containment, counters and
cache accounting, and the ``REPRO_OSR`` environment pin.
"""

import pytest

from repro.baselines import tuned_inliner
from repro.bytecode import MethodBuilder, verify_program
from repro.errors import BoundsTrap
from repro.interp import Interpreter
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from repro.obs import Observability
from repro.runtime import VMState
from tests.helpers import SHAPES_RESULT, fresh_program, shapes_program

#: A dispatch threshold no workload here reaches: the only route into
#: compiled code is an OSR transfer at a loop backedge.
UNREACHABLE = 10**9


def osr_engine(program, obs=None, **config_kw):
    config_kw.setdefault("hot_threshold", UNREACHABLE)
    config_kw.setdefault("osr", True)
    config_kw.setdefault("osr_threshold", 25)
    return Engine(
        program, JitConfig(**config_kw), tuned_inliner(1.0), obs=obs
    )


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_OSR", raising=False)
    monkeypatch.delenv("REPRO_SPECULATE", raising=False)


# ----------------------------------------------------------------------
# Workload builders
# ----------------------------------------------------------------------


def stack_loop_program():
    """A loop whose header is entered with a *non-empty* operand stack:
    the accumulator lives on the stack across the backedge, so an OSR
    transfer must map a live stack slot, not just locals.

    ``f()``: acc = 0 on the stack; for i in 0..49: acc += 3; return acc.
    """
    program = fresh_program()
    holder = program.define_class("T", is_abstract=True)
    b = MethodBuilder("f", [], "int", is_static=True)
    i = b.alloc_local()
    b.const(0)  # the accumulator, kept on the operand stack
    b.const(0).store(i)
    loop = b.new_label()
    done = b.new_label()
    b.place(loop).load(i).const(50).ge().if_true(done)
    b.const(3).add()  # acc += 3 (on the stack)
    b.load(i).const(1).add().store(i)
    b.goto(loop)
    b.place(done).retv()
    holder.add_method(b.build())
    verify_program(program)
    return program


def bottom_test_loop_program():
    """A do-while shape: the backedge is a *taken backward IF*, the
    other OSR trigger point. ``g(n)``: sum 0+1+...+(n-1)."""
    program = fresh_program()
    holder = program.define_class("T", is_abstract=True)
    b = MethodBuilder("g", ["int"], "int", is_static=True)
    acc = b.alloc_local()
    i = b.alloc_local()
    b.const(0).store(acc)
    b.const(0).store(i)
    loop = b.new_label()
    b.place(loop)
    b.load(acc).load(i).add().store(acc)
    b.load(i).const(1).add().store(i)
    b.load(i).load(0).lt().if_true(loop)  # backward IF backedge
    b.load(acc).retv()
    holder.add_method(b.build())
    verify_program(program)
    return program


def void_loop_program():
    """A void hot loop that prints from inside compiled code."""
    program = fresh_program()
    holder = program.define_class("T", is_abstract=True)
    b = MethodBuilder("v", [], "void", is_static=True)
    i = b.alloc_local()
    b.const(0).store(i)
    loop = b.new_label()
    done = b.new_label()
    b.place(loop).load(i).const(60).ge().if_true(done)
    b.load(i).invokestatic("Builtins", "print")
    b.load(i).const(1).add().store(i)
    b.goto(loop)
    b.place(done).ret()
    holder.add_method(b.build())
    verify_program(program)
    return program


def trap_loop_program():
    """A loop that walks off the end of an array after OSR kicks in."""
    program = fresh_program()
    holder = program.define_class("T", is_abstract=True)
    b = MethodBuilder("t", [], "int", is_static=True)
    arr = b.alloc_local()
    i = b.alloc_local()
    acc = b.alloc_local()
    b.const(40).newarray("int").store(arr)
    b.const(0).store(acc)
    b.const(0).store(i)
    loop = b.new_label()
    done = b.new_label()
    # Runs i = 0..99 but the array has 40 slots: traps at i == 40,
    # well after the OSR threshold of 25 transferred the frame.
    b.place(loop).load(i).const(100).ge().if_true(done)
    b.load(acc).load(arr).load(i).aload("int").add().store(acc)
    b.load(i).const(1).add().store(i)
    b.goto(loop)
    b.place(done).load(acc).retv()
    holder.add_method(b.build())
    verify_program(program)
    return program


# ----------------------------------------------------------------------
# The transfer itself
# ----------------------------------------------------------------------


class TestOsrTransfer:
    def test_hot_loop_finishes_in_compiled_code(self):
        engine = osr_engine(shapes_program())
        assert engine.call("Main", "run") == SHAPES_RESULT
        # The dispatch threshold is unreachable, so these can only come
        # from the backedge trigger.
        assert engine.osr_entry_count == 1
        assert engine.osr_compilation_count == 1
        assert engine.compilation_count == 1
        assert engine.code_cache.osr_count() == 1
        assert len(engine.code_cache) == 0
        # The loop's remaining iterations ran as compiled cycles.
        assert engine.compiled_cycles > 0

    def test_bit_identical_to_osr_off(self):
        on = osr_engine(shapes_program())
        off = osr_engine(shapes_program(), osr=False)
        assert on.call("Main", "run") == off.call("Main", "run")
        assert on.vm.output == off.vm.output
        assert off.osr_entry_count == 0
        assert on.osr_entry_count == 1

    def test_matches_pure_interpreter(self):
        program = shapes_program()
        vm = VMState(program)
        interp = Interpreter(vm, predecode=False)
        expected = interp.call_static("Main", "run")
        engine = osr_engine(shapes_program())
        assert engine.call("Main", "run") == expected

    def test_predecode_tier_transfers_identically(self):
        classic = osr_engine(shapes_program(), interp_predecode=False)
        fast = osr_engine(shapes_program(), interp_predecode=True)
        assert classic.call("Main", "run") == fast.call("Main", "run")
        assert classic.osr_entry_count == fast.osr_entry_count == 1
        # Both tiers interpret exactly the same prefix of the frame
        # before transferring.
        assert (
            classic.interpreter.ops_executed == fast.interpreter.ops_executed
        )

    def test_backward_if_backedge_triggers(self):
        engine = osr_engine(bottom_test_loop_program())
        assert engine.call("T", "g", [300]) == 300 * 299 // 2
        assert engine.osr_entry_count == 1

    def test_live_operand_stack_is_mapped(self):
        engine = osr_engine(stack_loop_program(), osr_threshold=10)
        assert engine.call("T", "f") == 150
        assert engine.osr_entry_count == 1

    def test_void_method_osr(self):
        engine = osr_engine(void_loop_program())
        off = osr_engine(void_loop_program(), osr=False)
        assert engine.call("T", "v") is None and off.call("T", "v") is None
        assert engine.osr_entry_count == 1
        assert engine.vm.output == off.vm.output
        assert len(engine.vm.output) == 60

    def test_trap_inside_osr_code_is_identical(self):
        engine = osr_engine(trap_loop_program())
        off = osr_engine(trap_loop_program(), osr=False)
        with pytest.raises(BoundsTrap) as on_trap:
            engine.call("T", "t")
        with pytest.raises(BoundsTrap) as off_trap:
            off.call("T", "t")
        assert str(on_trap.value) == str(off_trap.value)
        assert engine.osr_entry_count == 1

    def test_second_invocation_reuses_installed_osr_code(self):
        engine = osr_engine(shapes_program())
        first = engine.call("Main", "run")
        second = engine.call("Main", "run")
        assert first == second == SHAPES_RESULT
        assert engine.osr_entry_count == 2
        assert engine.osr_compilation_count == 1  # compiled once


# ----------------------------------------------------------------------
# Deopt fallback and failure containment
# ----------------------------------------------------------------------


def flip_loop_program():
    """A hot loop with a *single* virtual callsite whose receiver is
    monomorphic (Square) for the first 100 iterations and then flips
    to Circle: the OSR continuation, compiled speculatively mid-loop
    from the monomorphic profile, deopts when the guard is refuted."""
    program = shapes_program()
    main = program.classes["Main"]
    b = MethodBuilder("spin", [], "int", is_static=True)
    b.new("Square").dup().const(4).putfield("Square", "side")
    sq = b.alloc_local()
    b.store(sq)
    b.new("Circle").dup().const(3).putfield("Circle", "r")
    ci = b.alloc_local()
    b.store(ci)
    acc = b.alloc_local()
    i = b.alloc_local()
    b.const(0).store(acc)
    b.const(0).store(i)
    loop = b.new_label()
    done = b.new_label()
    circle = b.new_label()
    join = b.new_label()
    b.place(loop).load(i).const(140).ge().if_true(done)
    # Select the receiver, then dispatch at one shared callsite so the
    # profile there really flips from Square to Circle at i == 100.
    b.load(i).const(100).ge().if_true(circle)
    b.load(sq).goto(join)
    b.place(circle).load(ci)
    b.place(join)
    b.invokeinterface("Shape", "area").load(acc).add().store(acc)
    b.load(i).const(1).add().store(i).goto(loop)
    b.place(done).load(acc).retv()
    main.add_method(b.build())
    verify_program(program)
    return program


FLIP_RESULT = 100 * 16 + 40 * 27


class TestOsrDeoptAndFailure:
    def test_deopt_falls_back_and_finishes_correctly(self):
        engine = osr_engine(flip_loop_program(), speculate=True)
        assert engine.call("Main", "spin") == FLIP_RESULT
        assert engine.osr_entry_count >= 1
        assert engine.deopt_count >= 1
        # The refuted continuation was invalidated, not the (absent)
        # whole-method entry.
        assert engine.invalidation_count >= 1

    def test_deopt_matches_non_speculative_and_osr_off(self):
        spec = osr_engine(flip_loop_program(), speculate=True)
        plain = osr_engine(flip_loop_program(), speculate=False)
        off = osr_engine(flip_loop_program(), osr=False)
        assert (
            spec.call("Main", "spin")
            == plain.call("Main", "spin")
            == off.call("Main", "spin")
            == FLIP_RESULT
        )

    def test_compile_cap_declines_and_interprets(self):
        engine = osr_engine(shapes_program(), max_compiled_methods=0)
        assert engine.call("Main", "run") == SHAPES_RESULT
        assert engine.osr_entry_count == 0
        assert engine.osr_compilation_count == 0
        # The failed key is memoized: later backedges stop retrying.
        assert len(engine._osr_failed) == 1

    def test_env_pin_overrides_explicit_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_OSR", "off")
        engine = osr_engine(shapes_program())
        assert engine.call("Main", "run") == SHAPES_RESULT
        assert engine.osr_entry_count == 0

    def test_env_enables_when_config_defers(self, monkeypatch):
        monkeypatch.setenv("REPRO_OSR", "on")
        engine = osr_engine(shapes_program(), osr=None, osr_threshold=25)
        assert engine.call("Main", "run") == SHAPES_RESULT
        assert engine.osr_entry_count == 1


# ----------------------------------------------------------------------
# Counters, provenance, cache accounting
# ----------------------------------------------------------------------


class TestOsrObservability:
    def test_counters_events_and_flight_records(self):
        obs = Observability()
        engine = osr_engine(shapes_program(), obs=obs)
        assert engine.call("Main", "run") == SHAPES_RESULT
        assert obs.metrics.counter("osr.entries").value == 1
        assert obs.metrics.counter("osr.compilations").value == 1
        kinds = [
            record["name"]
            for record in obs.events.records
            if record["type"] == "event"
        ]
        assert "osr.trigger" in kinds
        assert "osr.install" in kinds
        assert "osr.enter" in kinds
        flight_kinds = [
            record["kind"] for record in obs.flight.records()
        ]
        assert "osr.trigger" in flight_kinds
        assert "osr.install" in flight_kinds
        assert "osr.enter" in flight_kinds

    def test_explain_groups_osr_compilations(self):
        from repro.tools.explain import group_compilations

        obs = Observability()
        engine = osr_engine(shapes_program(), obs=obs)
        engine.call("Main", "run")
        compilations, _ = group_compilations(obs.flight.records())
        osr_roots = [
            c for c in compilations if c.root and "@osr" in c.root
        ]
        assert osr_roots, "no OSR compilation group"
        assert osr_roots[0].install is not None
        assert osr_roots[0].install["bci"] == 41

    def test_cache_accounting_counts_osr_size(self):
        engine = osr_engine(shapes_program())
        engine.call("Main", "run")
        cache = engine.code_cache
        assert cache.osr_count() == 1
        assert cache.total_size > 0
        method = engine.program.lookup_method("Main", "run")
        assert cache.evict_osr(method, 41)
        assert cache.total_size == 0
        assert cache.osr_count() == 0

    def test_null_obs_counters_still_available(self):
        engine = osr_engine(shapes_program())
        engine.call("Main", "run")
        assert engine.osr_entry_count == 1
        assert engine.osr_compilation_count == 1


# ----------------------------------------------------------------------
# Config resolution
# ----------------------------------------------------------------------


class TestOsrConfig:
    def test_defaults_to_off(self):
        assert not JitConfig().osr_enabled()

    def test_explicit_on(self):
        assert JitConfig(osr=True).osr_enabled()

    def test_env_off_pins_explicit_true(self, monkeypatch):
        monkeypatch.setenv("REPRO_OSR", "off")
        assert not JitConfig(osr=True).osr_enabled()

    def test_env_on_resolves_deferred(self, monkeypatch):
        monkeypatch.setenv("REPRO_OSR", "on")
        assert JitConfig().osr_enabled()
        assert not JitConfig(osr=False).osr_enabled()

    def test_interpreter_only_vm_never_osrs(self):
        assert not JitConfig(compile_enabled=False, osr=True).osr_enabled()


# ----------------------------------------------------------------------
# Satellite: hotness formula is defined exactly once
# ----------------------------------------------------------------------


class TestHotnessDedup:
    def test_hottest_matches_hotness(self):
        from repro.interp.profiles import ProfileStore

        program = shapes_program()
        vm = VMState(program)
        store = ProfileStore()
        interp = Interpreter(vm, profiles=store)
        interp.call_static("Main", "run")
        ranked = store.hottest(limit=10)
        assert ranked
        for name, score in ranked:
            profile = store._methods[name]
            assert score == profile.hotness()
            assert score == (
                profile.invocations + profile.backedge_total() // 8
            )
