"""Eviction accounting of the shared, budgeted code cache.

Unit tests drive :class:`~repro.jit.codecache.SharedCodeCache` directly
with stub code objects (the cache only reads ``.size``); the
integration tests at the bottom run a real engine over a
:class:`~repro.jit.codecache.TenantCacheView` so quota pressure and
rejection interact with actual compilation and dispatch.
"""

from repro.baselines import tuned_inliner
from repro.bytecode import MethodBuilder, verify_program
from repro.jit.codecache import SharedCodeCache
from repro.jit.config import JitConfig
from repro.jit.engine import Engine

from tests.helpers import fresh_program, shapes_program


class FakeCode:
    """The cache's whole contract with installed code is ``.size``."""

    def __init__(self, size):
        self.size = size


def fill(cache, tenant, names, size=40):
    for name in names:
        assert cache.install(tenant, name, FakeCode(size))


# ----------------------------------------------------------------------
# Quota enforcement
# ----------------------------------------------------------------------


class TestQuotaEnforcement:
    def test_tenant_quota_evicts_down_to_quota(self):
        cache = SharedCodeCache(tenant_quota=100)
        fill(cache, "a", ["m1", "m2", "m3"], size=40)
        assert cache.tenant_size("a") <= 100
        assert cache.eviction_count == 1
        # LRU: the first-installed entry was the victim.
        assert cache.get("a", "m1") is None
        assert cache.get("a", "m2") is not None

    def test_quota_is_per_tenant_not_global(self):
        cache = SharedCodeCache(tenant_quota=100)
        fill(cache, "a", ["m1", "m2"], size=40)
        fill(cache, "b", ["m1", "m2"], size=40)
        # Both tenants fit their own quota; nothing evicted even though
        # the process holds 160 bytes.
        assert cache.eviction_count == 0
        assert cache.total_size == 160

    def test_global_budget_evicts_across_tenants(self):
        cache = SharedCodeCache(budget=100)
        fill(cache, "a", ["m1"], size=60)
        fill(cache, "b", ["m1"], size=60)
        # Tenant a's entry was the least recently used process-wide.
        assert cache.total_size == 60
        assert cache.get("a", "m1") is None
        assert cache.get("b", "m1") is not None
        assert cache.evictions_of("a") == 1
        assert cache.evictions_of("b") == 0

    def test_oversized_entry_rejected_not_thrashed(self):
        cache = SharedCodeCache(tenant_quota=100)
        fill(cache, "a", ["m1"], size=40)
        assert cache.install("a", "huge", FakeCode(101)) is False
        # Rejected outright: nothing was evicted to make room.
        assert cache.quota_rejections == 1
        assert cache.eviction_count == 0
        assert cache.get("a", "m1") is not None
        assert cache.get("a", "huge") is None

    def test_entry_over_global_budget_rejected(self):
        cache = SharedCodeCache(budget=50)
        assert cache.install("a", "m1", FakeCode(51)) is False
        assert cache.quota_rejections == 1
        assert len(cache) == 0

    def test_per_tenant_quota_override(self):
        cache = SharedCodeCache(tenant_quota=100)
        cache.view("big", quota=500)
        fill(cache, "big", ["m1", "m2", "m3"], size=100)
        assert cache.eviction_count == 0
        assert cache.tenant_size("big") == 300


# ----------------------------------------------------------------------
# Victim selection: LRU vs hotness
# ----------------------------------------------------------------------


class TestVictimSelection:
    def test_lru_spares_recently_dispatched(self):
        cache = SharedCodeCache(budget=120)
        fill(cache, "a", ["m1", "m2", "m3"], size=40)
        assert cache.get("a", "m1") is not None  # bump m1's recency
        assert cache.install("a", "m4", FakeCode(40))
        # m2 — not m1 — was least recently used.
        assert cache.get("a", "m2") is None
        assert cache.get("a", "m1") is not None

    def test_hotness_evicts_coldest_regardless_of_recency(self):
        heat = {"cold": 1, "warm": 50, "hot": 900}
        cache = SharedCodeCache(
            budget=120,
            policy="hotness",
            hotness_fn=lambda tenant, method: heat.get(method, 0),
        )
        fill(cache, "a", ["cold", "warm", "hot"], size=40)
        assert cache.get("a", "cold") is not None  # recency can't save it
        heat["m4"] = 10
        assert cache.install("a", "m4", FakeCode(40))
        assert cache.get("a", "cold") is None
        assert cache.get("a", "warm") is not None
        assert cache.get("a", "hot") is not None

    def test_hotness_ties_fall_back_to_lru(self):
        cache = SharedCodeCache(
            budget=80, policy="hotness",
            hotness_fn=lambda tenant, method: 7,
        )
        fill(cache, "a", ["m1", "m2"], size=40)
        assert cache.get("a", "m1") is not None
        assert cache.install("a", "m3", FakeCode(40))
        assert cache.get("a", "m2") is None
        assert cache.get("a", "m1") is not None

    def test_just_installed_entry_is_never_the_victim(self):
        cache = SharedCodeCache(tenant_quota=40)
        fill(cache, "a", ["m1"], size=40)
        assert cache.install("a", "m2", FakeCode(40))
        # m2 (the protected install) survived; m1 was evicted.
        assert cache.get("a", "m2") is not None
        assert cache.get("a", "m1") is None


# ----------------------------------------------------------------------
# OSR side-table interaction
# ----------------------------------------------------------------------


class TestOsrEviction:
    def test_policy_eviction_cascades_osr_entries(self):
        cache = SharedCodeCache(budget=200)
        assert cache.install("a", "loopy", FakeCode(40))
        assert cache.install_osr("a", "loopy", 5, FakeCode(30))
        assert cache.install_osr("a", "loopy", 9, FakeCode(30))
        assert cache.osr_count("a") == 2
        # Push the root method out via budget pressure: both OSR
        # continuations must go with it (a continuation without its
        # root method is dead weight).
        assert cache.install("a", "big", FakeCode(180))
        assert cache.get("a", "loopy") is None
        assert cache.osr_count("a") == 0
        assert cache.eviction_count == 3
        assert cache.total_size == 180

    def test_engine_driven_evict_does_not_cascade(self):
        # Deopt invalidation drops exactly the entry the engine names:
        # an OSR continuation stays installed when only the root method
        # is invalidated (and vice versa) — the engine owns that policy.
        cache = SharedCodeCache()
        assert cache.install("a", "loopy", FakeCode(40))
        assert cache.install_osr("a", "loopy", 5, FakeCode(30))
        assert cache.evict("a", "loopy")
        assert cache.osr_count("a") == 1
        assert cache.get_osr("a", "loopy", 5) is not None

    def test_osr_entry_can_be_the_lru_victim_alone(self):
        cache = SharedCodeCache(budget=100)
        assert cache.install_osr("a", "loopy", 5, FakeCode(40))
        assert cache.install("a", "m1", FakeCode(40))
        assert cache.install("a", "m2", FakeCode(40))
        # The OSR continuation was oldest; evicting it must not touch
        # the whole-method entries.
        assert cache.osr_count("a") == 0
        assert cache.get("a", "m1") is not None
        assert cache.get("a", "m2") is not None


# ----------------------------------------------------------------------
# Reinstall accounting
# ----------------------------------------------------------------------


class TestReinstallAccounting:
    def test_reinstall_after_evict_is_counted(self):
        cache = SharedCodeCache(tenant_quota=80)
        fill(cache, "a", ["m1", "m2"], size=40)
        assert cache.install("a", "m3", FakeCode(40))  # evicts m1
        assert cache.reinstalls_after_evict("a") == 0
        assert cache.install("a", "m1", FakeCode(40))  # the thrash signal
        assert cache.reinstalls_after_evict("a") == 1

    def test_plain_reinstall_is_not_thrash(self):
        cache = SharedCodeCache()
        assert cache.install("a", "m1", FakeCode(40))
        assert cache.install("a", "m1", FakeCode(50))  # recompile, no evict
        assert cache.reinstalls_of("a") == 1
        assert cache.reinstalls_after_evict("a") == 0
        # Reinstall replaces: bytes are the new size, not the sum.
        assert cache.tenant_size("a") == 50

    def test_drop_tenant_reclaims_everything(self):
        cache = SharedCodeCache()
        fill(cache, "a", ["m1", "m2"], size=40)
        cache.install_osr("a", "m1", 3, FakeCode(20))
        fill(cache, "b", ["m1"], size=40)
        assert cache.drop_tenant("a") == 100
        assert cache.tenant_size("a") == 0
        assert len(cache) == 1
        assert cache.get("b", "m1") is not None


# ----------------------------------------------------------------------
# Integration: a real engine over a tenant view
# ----------------------------------------------------------------------


def _run_engine(code_cache=None, iterations=8):
    engine = Engine(
        shapes_program(),
        JitConfig(hot_threshold=2),
        tuned_inliner(0.5),
        code_cache=code_cache,
    )
    values = [
        engine.run_iteration("Main", "run").value for _ in range(iterations)
    ]
    return engine, values


def _two_entry_program():
    """Two identical independent entry points — a working set of two
    methods that only ever reach compiled code via engine dispatch, so
    a budget that fits one of them must thrash."""
    program = fresh_program()
    holder = program.define_class("T", is_abstract=True)
    for name in ("f", "g"):
        builder = MethodBuilder(name, [], "int", is_static=True)
        builder.const(0)
        for i in range(20):
            builder.const(i).add()
        builder.retv()
        holder.add_method(builder.build())
    verify_program(program)
    return program


class TestEngineIntegration:
    def test_tiny_budget_evicts_but_preserves_semantics(self):
        program = _two_entry_program()

        def alternate(code_cache):
            engine = Engine(
                program, JitConfig(hot_threshold=2), None,
                code_cache=code_cache,
            )
            return engine, [
                engine.run_iteration("T", "fg"[i % 2]).value
                for i in range(12)
            ]

        _, reference = alternate(None)
        # Measure one compiled method, then budget for exactly one.
        probe = SharedCodeCache()
        alternate(probe.view(0))
        one_method = probe.size_of(0, program.lookup_method("T", "f"))
        assert one_method > 0

        shared = SharedCodeCache(budget=one_method)
        _, values = alternate(shared.view(0))
        assert values == reference
        # f and g keep displacing each other: every install past the
        # first evicts the other method, and each recompile of a
        # previously evicted method counts as thrash.
        assert shared.eviction_count >= 2
        assert shared.reinstalls_after_evict(0) >= 1
        assert shared.total_size <= one_method

    def test_quota_rejection_marks_method_failed(self):
        _, reference = _run_engine()
        shared = SharedCodeCache(tenant_quota=1)
        engine, values = _run_engine(code_cache=shared.view(0))
        assert values == reference
        # Nothing fit under a 1-byte quota: every compile was rejected
        # once, then the engine stopped retrying (no thrash loop).
        assert shared.quota_rejections > 0
        assert len(shared) == 0
        assert engine.compilation_count == 0

    def test_two_tenants_share_the_budget(self):
        shared = SharedCodeCache(budget=10**6)
        engine_a, values_a = _run_engine(code_cache=shared.view("a"))
        engine_b, values_b = _run_engine(code_cache=shared.view("b"))
        assert values_a == values_b
        assert shared.tenant_size("a") > 0
        assert shared.tenant_size("a") == shared.tenant_size("b")
        # The view reports *global* pressure as total_size by design.
        view = shared.view("a")
        assert view.total_size == shared.total_size
        assert view.total_size == (
            shared.tenant_size("a") + shared.tenant_size("b")
        )
