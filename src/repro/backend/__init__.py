"""Compiled-code backend: lowering, machine model, cycle accounting.

The paper evaluates wall-clock time on real hardware; our substitute is
a deterministic cycle model. What matters for reproducing the paper's
*shapes* is that the model prices exactly the effects inlining trades
between:

- call overheads (direct < virtual < interface dispatch),
- the optimizations inlining unlocks (fewer executed instructions),
- code-size pressure (an instruction-cache model that taxes every
  compiled method entry once total installed code exceeds capacity),
- the interpreter/compiled-tier gap (hot code must get compiled at all).
"""

from repro.backend.costmodel import CostModel
from repro.backend.lowering import lower_graph
from repro.backend.machine import MachineCode, MachineExecutor
from repro.backend.icache import ICacheModel

__all__ = [
    "CostModel",
    "lower_graph",
    "MachineCode",
    "MachineExecutor",
    "ICacheModel",
]
