"""h2 — in-memory SQL database.

h2's hot loops scan and index rows. We model a two-table workload:
inserts into an indexed table (hash index via ``IntIntMap``), point
lookups through the index, and a range scan with a predicate —
iterator-style access through a cursor abstraction that only becomes
cheap when devirtualized and inlined.
"""

DESCRIPTION = "row inserts, indexed point lookups, predicate range scans"
ITERATIONS = 12

SOURCE = """
class Row {
  var id: int;
  var balance: int;
  var branch: int;
  def init(id: int, balance: int, branch: int): void {
    this.id = id; this.balance = balance; this.branch = branch;
  }
}

class Table {
  var rows: ArraySeq;
  var index: IntIntMap;
  def init(): void {
    this.rows = new ArraySeq(64);
    this.index = new IntIntMap(64);
  }
  def insert(row: Row): void {
    this.index.put(row.id, this.rows.length());
    this.rows.add(row);
  }
  def byId(id: int): Row {
    var pos: int = this.index.get(id, 0 - 1);
    if (pos < 0) { return null; }
    return this.rows.get(pos) as Row;
  }
  def scan(c: Cursor): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < this.rows.length()) {
      var row: Row = this.rows.get(i) as Row;
      if (c.accept(row)) { acc = acc + c.extract(row); }
      i = i + 1;
    }
    return acc;
  }
}

trait Cursor {
  def accept(r: Row): bool;
  def extract(r: Row): int;
}

class RichAccounts implements Cursor {
  var floor: int;
  def init(floor: int): void { this.floor = floor; }
  def accept(r: Row): bool { return r.balance >= this.floor; }
  def extract(r: Row): int { return r.balance; }
}

class BranchTotal implements Cursor {
  var branch: int;
  def init(branch: int): void { this.branch = branch; }
  def accept(r: Row): bool { return r.branch == this.branch; }
  def extract(r: Row): int { return 1; }
}

object Main {
  static var accounts: Table;

  def setup(): void {
    var t: Table = new Table();
    var i: int = 0;
    while (i < 250) {
      t.insert(new Row(i * 7 % 1000, (i * 37) % 900, i % 8));
      i = i + 1;
    }
    Main.accounts = t;
  }

  def run(): int {
    if (Main.accounts == null) { Main.setup(); }
    var t: Table = Main.accounts;
    var acc: int = 0;
    var q: int = 0;
    while (q < 2) {
      acc = acc + t.scan(new RichAccounts(300 + q * 50));
      acc = acc + t.scan(new BranchTotal(q % 8));
      var k: int = 0;
      while (k < 120) {
        var row: Row = t.byId((k * 13) % 1000);
        if (row != null) { acc = acc + row.balance; }
        k = k + 1;
      }
      q = q + 1;
    }
    return acc;
  }
}
"""
