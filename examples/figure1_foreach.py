"""The paper's Figure 1, reproduced end to end.

The motivating example: ``log`` iterates a sequence with the generic
``foreach`` from a collections trait, calling ``length``/``get``/
``apply`` — all polymorphic. Inlining ``foreach`` alone is useless; the
paper's point is that {log, foreach, length, get, apply} form one
*optimizable unit* (a callsite cluster) even though they are five
logical units.

This script shows the machinery working: the call tree the inliner
explores, the cluster it forms, and the final cycle counts with the
full algorithm vs the greedy baseline.

Run:  python examples/figure1_foreach.py
"""

from repro.backend.costmodel import CostModel
from repro.baselines import GreedyInliner, tuned_inliner
from repro.core import IncrementalInliner, InlinerParams
from repro.core.calltree import make_root
from repro.core.trials import discover_children
from repro.ir import annotate_frequencies, build_graph
from repro.interp import Interpreter
from repro.jit import Engine, JitConfig
from repro.jit.compiler import CompileContext
from repro.lang import compile_source
from repro.opts.pipeline import OptimizationPipeline
from repro.runtime import VMState

SOURCE = """
// Figure 1 of the paper, in minij. Seq.foreach is the stdlib's
// IndexedSeqOptimized.foreach analog: a trait default method whose
// length/get/apply callsites are all polymorphic.
object Main {
  def log(xs: Seq): int {
    var sum: Box = new Box(0);
    xs.foreach(fun (x: Box): void {
      sum.value = sum.value + x.get();
    });
    return sum.value;
  }
  def run(): int {
    var args: ArraySeq = new ArraySeq(8);
    var i: int = 0;
    while (i < 50) { args.add(new Box(i)); i = i + 1; }
    return Main.log(args);
  }
}
"""


def show_call_tree(program, profiles):
    """Build Main.log's graph and show what the inliner's expansion
    phase sees before any inlining decision."""
    method = program.lookup_method("Main", "log")
    graph = build_graph(method, program, profiles)
    annotate_frequencies(graph)
    root = make_root(graph)
    context = CompileContext(
        program, profiles, OptimizationPipeline(program), CostModel()
    )
    params = InlinerParams.scaled(0.1)
    discover_children(root, context, params)

    from repro.core.expansion import ExpansionPhase
    from repro.core.inliner import InlineReport

    expansion = ExpansionPhase(params)
    expansion.run(root, context, InlineReport())
    print("call tree of Main.log after one expansion phase")
    print("(E expanded / C cutoff / P polymorphic / G opaque):\n")
    print(root.describe())
    return root


def main():
    program = compile_source(SOURCE)

    # Warm profiles the way the VM would: interpret a few runs.
    vm = VMState(program)
    interp = Interpreter(vm)
    for _ in range(3):
        expected = interp.call_static("Main", "run")
    print("program result: %d\n" % expected)

    show_call_tree(program, interp.profiles)

    print("\nsteady-state comparison:")
    for name, inliner in [
        ("no inlining", None),
        ("greedy (open-source-Graal-like)", GreedyInliner()),
        ("incremental (the paper)", tuned_inliner(0.1)),
    ]:
        engine = Engine(program, JitConfig(hot_threshold=20), inliner=inliner)
        for _ in range(10):
            r = engine.run_iteration("Main", "run")
        assert r.value == expected
        print("  %-34s %8d cycles   (installed %d)" % (
            name, r.total_cycles, r.installed_size))


if __name__ == "__main__":
    main()
