"""Expansion-phase unit tests (Listings 3–4)."""

from repro.core.calltree import NodeKind, make_root
from repro.core.expansion import ExpansionPhase
from repro.core.inliner import InlineReport
from repro.core.params import InlinerParams
from repro.core.trials import discover_children
from repro.ir import annotate_frequencies, build_graph
from repro.jit.compiler import CompileContext
from repro.opts.pipeline import OptimizationPipeline
from tests.helpers import run_static, shapes_program


def _setup(method=("Main", "run"), params=None):
    program = shapes_program()
    _, _, interp = run_static(program, "Main", "run")
    graph = build_graph(program.lookup_method(*method), program, interp.profiles)
    annotate_frequencies(graph)
    root = make_root(graph)
    context = CompileContext(
        program, interp.profiles, OptimizationPipeline(program), None
    )
    params = params or InlinerParams.scaled(0.1)
    discover_children(root, context, params)
    return program, root, context, params


class TestExpansion:
    def test_expands_hot_cutoffs(self):
        program, root, context, params = _setup()
        phase = ExpansionPhase(params)
        report = InlineReport()
        expanded = phase.run(root, context, report)
        assert expanded > 0
        assert report.expansions == expanded
        kinds = [c.kind for c in root.children]
        assert NodeKind.EXPANDED in kinds

    def test_expansion_descends_into_subtrees(self):
        program, root, context, params = _setup()
        phase = ExpansionPhase(params)
        phase.run(root, context, InlineReport())
        depths = []

        def walk(node, depth):
            if node.kind == NodeKind.EXPANDED and not node.is_root:
                depths.append(depth)
            for child in node.children:
                walk(child, depth + 1)

        walk(root, 0)
        assert depths and max(depths) >= 2  # total -> area chain explored

    def test_budget_limits_expansions_per_round(self):
        params = InlinerParams.scaled(0.1)
        params.max_expansions_per_round = 1
        program, root, context, params = _setup(params=params)
        phase = ExpansionPhase(params)
        assert phase.run(root, context, InlineReport()) == 1

    def test_fixed_mode_stops_at_te(self):
        program, root, context, params = _setup()
        phase = ExpansionPhase(params, adaptive=False, fixed_te=0)
        assert phase.run(root, context, InlineReport()) == 0
        # Declined nodes stay cutoffs (still inlinable later).
        assert all(
            c.kind in (NodeKind.CUTOFF, NodeKind.GENERIC, NodeKind.POLYMORPHIC)
            for c in root.children
        )

    def test_decline_is_per_round(self):
        program, root, context, params = _setup()
        phase = ExpansionPhase(params, adaptive=False, fixed_te=0)
        phase.run(root, context, InlineReport())
        declined = [c for c in root.children if c.expand_declined]
        assert declined
        # A new round resets the decline marks before re-deciding.
        phase.fixed_te = 10 ** 9
        expanded = phase.run(root, context, InlineReport())
        assert expanded > 0

    def test_queue_bookkeeping(self):
        """A child stays on its parent's queue only while it is a
        cutoff or has expandable descendants (Listing 3)."""
        program, root, context, params = _setup()
        phase = ExpansionPhase(params)
        phase.run(root, context, InlineReport())
        for node in root.subtree():
            for queued in node.queue:
                assert queued in node.children
                assert phase._keep_on_queue(queued)

    def test_polymorphic_children_expandable(self):
        program, root, context, params = _setup(method=("Main", "total"))
        phase = ExpansionPhase(params)
        phase.run(root, context, InlineReport())
        (poly,) = root.children
        assert poly.kind == NodeKind.POLYMORPHIC
        expanded_targets = [
            c for c in poly.children if c.kind == NodeKind.EXPANDED
        ]
        assert expanded_targets  # hot receiver types got explored


class TestPriorityOrdering:
    def test_hotter_subtree_explored_first(self):
        params = InlinerParams.scaled(0.1)
        params.max_expansions_per_round = 1
        program, root, context, params = _setup(params=params)
        phase = ExpansionPhase(params)
        phase.run(root, context, InlineReport())
        expanded = [c for c in root.children if c.kind == NodeKind.EXPANDED]
        assert len(expanded) == 1
        # The square path (75% of iterations) is the hotter callsite.
        others = [
            c
            for c in root.children
            if c is not expanded[0] and c.method is not None
        ]
        assert all(expanded[0].frequency >= o.frequency for o in others)
