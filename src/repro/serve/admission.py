"""Admission control for the multi-tenant VM service.

A :class:`TenantSpec` describes one workload a client wants hosted; the
:class:`AdmissionController` decides whether the service takes it. The
checks are deliberately simple and deterministic — capacity (max
tenants), name uniqueness, and quota sanity against the shared cache
budget — so an admission decision is explainable from the config alone.
"""


class AdmissionDenied(Exception):
    """The service refused to admit a tenant."""


class ServiceConfig:
    """Configuration of one :class:`~repro.serve.service.VMService`.

    Attributes:
        max_tenants: admission cap on concurrently hosted tenants.
        compile_workers: worker threads of the shared background
            compilation pipeline (``0`` = deterministic test mode — the
            queue only drains via ``run_queued``/``drain``).
        queue_capacity: bound of the shared compile queue; a full queue
            rejects requests (backpressure) rather than block tenants.
        cache_budget: global byte budget of the shared code cache
            (None = unbounded).
        tenant_quota: default per-tenant byte quota (None = unbounded;
            a :class:`TenantSpec` can override per tenant).
        eviction_policy: ``"lru"`` or ``"hotness"`` victim selection.
        cache_shards: shard count of the shared code cache.
        compile_mode: ``"sync"`` / ``"async"`` / None — forwarded into
            every tenant's :class:`~repro.jit.config.JitConfig`; None
            defers to ``REPRO_COMPILE`` (sync remains the hard pin).
        share_profiles: predicate on qualified method names selecting
            the methods whose profiles are pooled across tenants
            (None = pool everything).
        hot_threshold: default compile threshold for tenant engines.
        backend: ``"machine"`` / ``"py"`` / None — default executor
            backend forwarded into every tenant's
            :class:`~repro.jit.config.JitConfig` (a tenant's ``jit``
            overrides win); None defers to ``REPRO_BACKEND``
            (``machine`` remains the hard pin).
    """

    def __init__(self, max_tenants=16, compile_workers=2,
                 queue_capacity=64, cache_budget=None, tenant_quota=None,
                 eviction_policy="lru", cache_shards=8, compile_mode=None,
                 share_profiles=None, hot_threshold=40, backend=None):
        self.max_tenants = max_tenants
        self.compile_workers = compile_workers
        self.queue_capacity = queue_capacity
        self.cache_budget = cache_budget
        self.tenant_quota = tenant_quota
        self.eviction_policy = eviction_policy
        self.cache_shards = cache_shards
        self.compile_mode = compile_mode
        self.share_profiles = share_profiles
        self.hot_threshold = hot_threshold
        self.backend = backend


class TenantSpec:
    """One tenant workload: a program, an entry point, a traffic shape.

    Exactly one of *program* / *benchmark* must be given: a prebuilt
    :class:`~repro.bytecode.program.Program`, or the name of a
    registered benchmark (:mod:`repro.bench.suite`).

    ``inliner`` is a zero-argument factory (inliners carry state — one
    per engine); ``jit`` is a dict of extra
    :class:`~repro.jit.config.JitConfig` keyword overrides; ``merge``
    is the profile merge policy (``"shared"``/``"isolated"``), and
    ``quota`` overrides the service's default per-tenant cache quota.
    """

    def __init__(self, name, program=None, benchmark=None,
                 entry=("Main", "run"), iterations=10, inliner=None,
                 jit=None, merge="shared", quota=None, seed=0x5EED):
        if (program is None) == (benchmark is None):
            raise ValueError(
                "tenant %r: give exactly one of program=/benchmark=" % name
            )
        self.name = name
        self.program = program
        self.benchmark = benchmark
        self.entry = entry
        self.iterations = iterations
        self.inliner = inliner
        self.jit = dict(jit) if jit else {}
        self.merge = merge
        self.quota = quota
        self.seed = seed

    def load_program(self):
        if self.program is not None:
            return self.program
        from repro.bench.suite import get_benchmark

        return get_benchmark(self.benchmark).load()

    def make_inliner(self):
        return self.inliner() if self.inliner is not None else None


class AdmissionController:
    """Decides whether a :class:`TenantSpec` may join the service."""

    def __init__(self, config):
        self.config = config
        self.denied = 0

    def check(self, active_tenants, spec):
        """Raise :class:`AdmissionDenied` when *spec* cannot join."""
        try:
            if len(active_tenants) >= self.config.max_tenants:
                raise AdmissionDenied(
                    "service full: %d/%d tenants"
                    % (len(active_tenants), self.config.max_tenants)
                )
            if spec.name in active_tenants:
                raise AdmissionDenied(
                    "tenant name %r already admitted" % spec.name
                )
            quota = (
                spec.quota if spec.quota is not None
                else self.config.tenant_quota
            )
            budget = self.config.cache_budget
            if quota is not None and quota <= 0:
                raise AdmissionDenied(
                    "tenant %r: quota must be positive" % spec.name
                )
            if (
                quota is not None
                and budget is not None
                and quota > budget
            ):
                raise AdmissionDenied(
                    "tenant %r: quota %d exceeds the global budget %d"
                    % (spec.name, quota, budget)
                )
            if spec.merge not in ("shared", "isolated"):
                raise AdmissionDenied(
                    "tenant %r: unknown merge policy %r"
                    % (spec.name, spec.merge)
                )
        except AdmissionDenied:
            self.denied += 1
            raise
