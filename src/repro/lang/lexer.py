"""Tokenizer for minij."""

from repro.errors import LexError

KEYWORDS = {
    "class",
    "trait",
    "object",
    "extends",
    "implements",
    "def",
    "var",
    "static",
    "if",
    "else",
    "while",
    "return",
    "new",
    "null",
    "this",
    "super",
    "true",
    "false",
    "is",
    "as",
    "fun",
    "int",
    "bool",
    "void",
}

#: Multi-character operators, longest first.
_OPERATORS = [
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "=>",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    ".",
    "@",
]


class Token:
    """One token: kind is ``num``, ``ident``, a keyword, or an operator."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind, value, line, column):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


EOF = "<eof>"


def tokenize(source):
    """Tokenize *source*; returns a list ending with an EOF token."""
    tokens = []
    line = 1
    column = 1
    index = 0
    length = len(source)
    while index < length:
        ch = source[index]
        if ch == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        if ch == "/" and index + 1 < length and source[index + 1] == "/":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if ch == "/" and index + 1 < length and source[index + 1] == "*":
            index += 2
            column += 2
            while index + 1 < length and not (
                source[index] == "*" and source[index + 1] == "/"
            ):
                if source[index] == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
                index += 1
            if index + 1 >= length:
                raise LexError("unterminated block comment", line, column)
            index += 2
            column += 2
            continue
        if ch.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            tokens.append(Token("num", int(text), line, column))
            column += len(text)
            continue
        if ch.isalpha() or ch == "_" or ch == "$":
            start = index
            while index < length and (
                source[index].isalnum() or source[index] in "_$"
            ):
                index += 1
            text = source[start:index]
            kind = text if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue
        for op in _OPERATORS:
            if source.startswith(op, index):
                tokens.append(Token(op, op, line, column))
                index += len(op)
                column += len(op)
                break
        else:
            raise LexError("unexpected character %r" % ch, line, column)
    tokens.append(Token(EOF, None, line, column))
    return tokens
