"""Standard-library behavioral tests, including model-based property
tests (IntIntMap vs dict, Sort vs sorted, MathX vs math)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import compile_source
from repro.interp import Interpreter
from repro.runtime import VMState


def _run(source):
    program = compile_source(source)
    vm = VMState(program)
    return Interpreter(vm).call_static("Main", "run"), vm


class TestSequences:
    def test_arrayseq_growth_and_access(self):
        result, _ = _run(
            """
            object Main {
              def run(): int {
                var xs: ArraySeq = new ArraySeq(2);
                var i: int = 0;
                while (i < 40) { xs.add(new Box(i)); i = i + 1; }
                var b: Box = xs.get(39) as Box;
                return xs.length() * 1000 + b.get();
              }
            }
            """
        )
        assert result == 40039

    def test_seq_combinators(self):
        result, _ = _run(
            """
            object Main {
              def run(): int {
                var xs: ArraySeq = new ArraySeq(4);
                var i: int = 0;
                while (i < 10) { xs.add(new Box(i)); i = i + 1; }
                var evens: int = xs.count(fun (b: Box): bool => (b.get() & 1) == 0);
                var total: int = xs.sumBy(fun (b: Box): int => b.get());
                var first5: int = xs.indexWhere(fun (b: Box): bool => b.get() == 5);
                return evens * 10000 + total * 10 + first5;
              }
            }
            """
        )
        assert result == 5 * 10000 + 45 * 10 + 5

    def test_cons_list(self):
        result, _ = _run(
            """
            object Main {
              def run(): int {
                var l: List = new List(new Box(1), null);
                l = new List(new Box(2), l);
                l = new List(new Box(3), l);
                var b0: Box = l.get(0) as Box;
                var b2: Box = l.get(2) as Box;
                return l.length() * 100 + b0.get() * 10 + b2.get();
              }
            }
            """
        )
        assert result == 331

    def test_int_range_and_folds(self):
        result, _ = _run(
            """
            object Main {
              def run(): int {
                var r: IntRange = new IntRange(1, 11);
                var s: int = r.sum();
                var f: int = r.fold(1, fun (a: int, b: int): int {
                  if (b < 5) { return a * b; }
                  return a;
                });
                return s * 100 + f;
              }
            }
            """
        )
        assert result == 55 * 100 + 24

    def test_int_array_seq(self):
        result, _ = _run(
            """
            object Main {
              def run(): int {
                var xs: IntArraySeq = new IntArraySeq(1);
                var i: int = 0;
                while (i < 20) { xs.add(i * 3); i = i + 1; }
                return xs.sum() + xs.countWhere(fun (x: int): bool => x % 2 == 0);
              }
            }
            """
        )
        assert result == sum(3 * i for i in range(20)) + 10


class TestIntIntMapModel:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(-50, 50), st.integers(-1000, 1000)),
            max_size=60,
        )
    )
    def test_matches_dict(self, operations):
        """Random put sequences agree with a Python dict."""
        source_puts = " ".join(
            "m.put(%d, %d);" % (k, v) for k, v in operations
        )
        probes = sorted({k for k, _ in operations} | {9999})
        source_gets = " + ".join(
            "m.get(%d, %d)" % (k, -77) for k in probes
        ) or "0"
        result, _ = _run(
            """
            object Main {
              def run(): int {
                var m: IntIntMap = new IntIntMap(4);
                %s
                return %s + m.size * 1000000;
              }
            }
            """
            % (source_puts, source_gets)
        )
        model = {}
        for k, v in operations:
            model[k] = v
        expected = sum(model.get(k, -77) for k in probes) + len(model) * 1000000
        assert result == expected

    def test_has(self):
        result, _ = _run(
            """
            object Main {
              def run(): int {
                var m: IntIntMap = new IntIntMap(4);
                m.put(5, 0);
                var a: int = 0;
                if (m.has(5)) { a = a + 1; }
                if (m.has(6)) { a = a + 10; }
                return a;
              }
            }
            """
        )
        assert result == 1


class TestMathAndSort:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10 ** 9))
    def test_sqrt_is_isqrt(self, x):
        result, _ = _run(
            "object Main { def run(): int { return MathX.sqrt(%d); } }" % x
        )
        assert result == math.isqrt(x)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 12), st.integers(0, 9))
    def test_pow(self, base, exp):
        result, _ = _run(
            "object Main { def run(): int { return MathX.pow(%d, %d); } }"
            % (base, exp)
        )
        assert result == base ** exp

    @settings(max_examples=15, deadline=None)
    @given(st.integers(-10 ** 6, 10 ** 6), st.integers(-10 ** 6, 10 ** 6))
    def test_gcd(self, a, b):
        result, _ = _run(
            "object Main { def run(): int { return MathX.gcd(%d, %d); } }"
            % (a, b)
        )
        assert result == math.gcd(a, b)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
    def test_sort_matches_sorted(self, values):
        fills = " ".join(
            "a[%d] = %d;" % (i, v) for i, v in enumerate(values)
        )
        checks = " + ".join(
            "a[%d] * %d" % (i, i + 1) for i in range(len(values))
        )
        result, _ = _run(
            """
            object Main {
              def run(): int {
                var a: int[] = new int[%d];
                %s
                Sort.ints(a);
                return %s;
              }
            }
            """
            % (len(values), fills, checks)
        )
        expected = sum(v * (i + 1) for i, v in enumerate(sorted(values)))
        assert result == expected
