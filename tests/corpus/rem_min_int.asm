# entry: Main.main
# pinned: REM at the wrap boundary — sign-of-dividend and MIN_INT64 / -1.
# Regression for the interpreter/machine REM results bypassing wrap64
# (fixed alongside the introduction of repro.runtime.int64).
abstract class Main {
  static field s0: int
  static method main() -> int {
    # Feed operands through a static so the canonicalizer cannot fold
    # the interesting REM away before the machine executes it.
    CONST -9223372036854775808
    PUTSTATIC Main s0
    GETSTATIC Main s0
    CONST -1
    REM
    GETSTATIC Main s0
    CONST 3
    REM
    ADD
    CONST -7
    CONST 3
    REM
    ADD
    RETV
  }
}
