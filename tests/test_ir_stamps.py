"""Stamp lattice tests, including hypothesis properties.

The meet/join operations must behave like a lattice on the stamps our
programs actually produce — canonicalization and phi stamp computation
silently assume commutativity, idempotence and soundness of meet.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.ir import stamps as stm
from tests.helpers import shapes_program


def _program():
    return shapes_program()


_class_names = st.sampled_from(["Object", "Shape", "Square", "Circle"])


@st.composite
def ref_stamps(draw):
    if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
        return stm.null_stamp()
    name = draw(_class_names)
    exact = draw(st.booleans()) and name in ("Square", "Circle")
    return stm.ref_stamp(name, exact=exact, non_null=draw(st.booleans()))


@st.composite
def any_stamps(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return stm.int_stamp()
    if kind == 1:
        return stm.constant_int(draw(st.integers(-100, 100)))
    return draw(ref_stamps())


class TestMeetProperties:
    @given(any_stamps(), any_stamps())
    def test_meet_commutative(self, a, b):
        program = _program()
        assert a.meet(b, program) == b.meet(a, program)

    @given(any_stamps())
    def test_meet_idempotent(self, a):
        assert a.meet(a, _program()) == a

    @given(ref_stamps(), ref_stamps())
    def test_meet_is_upper_bound(self, a, b):
        """Every value conforming to a (or b) conforms to meet(a, b)."""
        program = _program()
        merged = a.meet(b, program)
        for side in (a, b):
            if side.is_null:
                assert not merged.non_null
                continue
            if merged.type_name is not None and side.type_name is not None:
                assert program.is_subtype(side.type_name, merged.type_name)
            if merged.non_null:
                assert side.non_null
            if merged.exact:
                assert side.exact and side.type_name == merged.type_name

    @given(any_stamps())
    def test_bottom_is_meet_identity(self, a):
        assert stm.BOTTOM_STAMP.meet(a, _program()) == a

    def test_kind_mismatch_meets_to_any(self):
        merged = stm.int_stamp().meet(stm.ref_stamp("Square"), _program())
        assert merged.kind == stm.Stamp.ANY


class TestJoinProperties:
    @given(any_stamps())
    def test_join_idempotent(self, a):
        assert a.join(a, _program()) == a

    @given(any_stamps())
    def test_any_is_join_identity(self, a):
        assert stm.ANY_STAMP.join(a, _program()) == a

    def test_join_refines_type(self):
        program = _program()
        shape = stm.ref_stamp("Shape")
        square = stm.ref_stamp("Square", exact=True, non_null=True)
        joined = shape.join(square, program)
        assert joined.type_name == "Square"
        assert joined.exact and joined.non_null

    def test_conflicting_exact_types_are_dead(self):
        program = _program()
        a = stm.ref_stamp("Square", exact=True)
        b = stm.ref_stamp("Circle", exact=True)
        assert a.join(b, program).kind == stm.Stamp.BOTTOM

    def test_null_vs_non_null_is_dead(self):
        program = _program()
        joined = stm.null_stamp().join(stm.ref_stamp("Shape", non_null=True), program)
        assert joined.kind == stm.Stamp.BOTTOM

    def test_int_constants(self):
        assert stm.constant_int(3).join(stm.int_stamp()).constant_value() == 3
        assert (
            stm.constant_int(3).join(stm.constant_int(4)).kind == stm.Stamp.BOTTOM
        )


class TestPrecision:
    def test_constant_more_precise_than_int(self):
        program = _program()
        assert stm.is_strictly_more_precise(
            stm.constant_int(1), stm.int_stamp(), program
        )
        assert not stm.is_strictly_more_precise(
            stm.int_stamp(), stm.constant_int(1), program
        )

    def test_subtype_more_precise(self):
        program = _program()
        assert stm.is_strictly_more_precise(
            stm.ref_stamp("Square"), stm.ref_stamp("Shape"), program
        )
        assert not stm.is_strictly_more_precise(
            stm.ref_stamp("Shape"), stm.ref_stamp("Shape"), program
        )

    def test_exactness_and_nullness_count(self):
        program = _program()
        base = stm.ref_stamp("Square")
        assert stm.is_strictly_more_precise(
            stm.ref_stamp("Square", exact=True), base, program
        )
        assert stm.is_strictly_more_precise(
            stm.ref_stamp("Square", non_null=True), base, program
        )
        assert stm.is_strictly_more_precise(stm.null_stamp(), base, program)

    def test_queries(self):
        program = _program()
        square = stm.ref_stamp("Square", exact=True)
        assert square.asserts_type(program, "Shape")
        assert square.excludes_type(program, "Circle")
        assert not stm.ref_stamp("Shape").excludes_type(program, "Circle")

    def test_declared_type_stamps(self):
        assert stm.stamp_for_declared_type("int") == stm.int_stamp()
        assert stm.stamp_for_declared_type("void").kind == stm.Stamp.VOID
        assert stm.stamp_for_declared_type("Square").type_name == "Square"
