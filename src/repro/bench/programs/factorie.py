"""factorie — probabilistic modelling (Scala).

factorie scores factor graphs millions of times during sampling; the
scores flow through deeply generic code (factors, family traits, boxed
values). We model a Gibbs-flavoured sweep: variables with small
domains, a `Seq` of polymorphic factors scored per candidate value via
`sumBy` lambdas over boxed neighbours. This is the paper's biggest
Scala win (≈2.9× over C2, ≈13% from deep trials alone).
"""

DESCRIPTION = "factor-graph scoring sweeps through generic combinators"
ITERATIONS = 14

SOURCE = """
class Variable {
  var value: int;
  var domain: int;
  def init(domain: int): void { this.value = 0; this.domain = domain; }
}

trait Factor {
  def score(assignment: int, v: Variable): int;
}

class UnaryFactor implements Factor {
  var weightA: int;
  var weightB: int;
  def init(a: int, b: int): void { this.weightA = a; this.weightB = b; }
  def score(assignment: int, v: Variable): int {
    if ((assignment & 1) == 0) { return this.weightA; }
    return this.weightB;
  }
}

class PairFactor implements Factor {
  var other: Variable;
  var agree: int;
  def init(other: Variable, agree: int): void {
    this.other = other; this.agree = agree;
  }
  def score(assignment: int, v: Variable): int {
    if (assignment == this.other.value) { return this.agree; }
    return 0 - this.agree / 2;
  }
}

class Model {
  var factorsOf: ArraySeq;   // per-variable ArraySeq of Factor
  def init(n: int): void {
    this.factorsOf = new ArraySeq(n);
    var i: int = 0;
    while (i < n) { this.factorsOf.add(new ArraySeq(4)); i = i + 1; }
  }
  def factors(id: int): ArraySeq { return this.factorsOf.get(id) as ArraySeq; }
  def scoreOf(v: Variable, id: int, assignment: int): int {
    return this.factors(id).sumBy(fun (f: Factor): int => f.score(assignment, v));
  }
}

object Main {
  static var vars: ArraySeq;
  static var model: Model;

  def setup(): void {
    var n: int = 24;
    var vars: ArraySeq = new ArraySeq(n);
    var i: int = 0;
    while (i < n) { vars.add(new Variable(4)); i = i + 1; }
    var model: Model = new Model(n);
    i = 0;
    while (i < n) {
      var fs: ArraySeq = model.factors(i);
      fs.add(new UnaryFactor(3 + i % 5, 2 + i % 3));
      fs.add(new PairFactor(vars.get((i + 1) % n) as Variable, 4));
      fs.add(new PairFactor(vars.get((i + 7) % n) as Variable, 2));
      i = i + 1;
    }
    Main.vars = vars;
    Main.model = model;
  }

  def run(): int {
    if (Main.model == null) { Main.setup(); }
    var energy: int = 0;
    var sweep: int = 0;
    while (sweep < 4) {
      var id: int = 0;
      while (id < Main.vars.length()) {
        var v: Variable = Main.vars.get(id) as Variable;
        var best: int = 0;
        var bestScore: int = 0 - 1000000;
        var a: int = 0;
        while (a < v.domain) {
          var s: int = Main.model.scoreOf(v, id, a);
          if (s > bestScore) { bestScore = s; best = a; }
          a = a + 1;
        }
        v.value = best;
        energy = energy + bestScore;
        id = id + 1;
      }
      sweep = sweep + 1;
    }
    return energy;
  }
}
"""
