"""apparat — ActionScript bytecode optimization (Scala).

apparat runs dataflow passes over bytecode arrays using Scala
collection combinators. We model an optimization pipeline on int
"instruction" streams: each pass is a lambda-driven transform
(peephole, constant-fold markers, dead-marker removal) composed through
a `Seq` of pass objects. The paper reports ≈1.7× over C2 here.
"""

DESCRIPTION = "lambda-composed dataflow passes over instruction streams"
ITERATIONS = 14

SOURCE = """
trait Pass {
  def apply(code: IntArraySeq): IntArraySeq;
}

class Peephole implements Pass {
  def apply(code: IntArraySeq): IntArraySeq {
    var out: IntArraySeq = new IntArraySeq(code.length());
    var i: int = 0;
    while (i < code.length()) {
      var op: int = code.get(i);
      if (op == 1 && i + 1 < code.length() && code.get(i + 1) == 2) {
        out.add(3);
        i = i + 2;
      } else {
        out.add(op);
        i = i + 1;
      }
    }
    return out;
  }
}

class FoldMarks implements Pass {
  def apply(code: IntArraySeq): IntArraySeq {
    var out: IntArraySeq = new IntArraySeq(code.length());
    code.foreach(fun (op: int): void {
      if (op >= 10) { out.add(op - 10); } else { out.add(op); }
    });
    return out;
  }
}

class StripDead implements Pass {
  def apply(code: IntArraySeq): IntArraySeq {
    var out: IntArraySeq = new IntArraySeq(code.length());
    code.foreach(fun (op: int): void {
      if (op != 0) { out.add(op); }
    });
    return out;
  }
}

object Main {
  static var passes: ArraySeq;
  static var input: IntArraySeq;

  def setup(): void {
    var passes: ArraySeq = new ArraySeq(4);
    passes.add(new Peephole());
    passes.add(new FoldMarks());
    passes.add(new StripDead());
    Main.passes = passes;
    var input: IntArraySeq = new IntArraySeq(400);
    var x: int = 7;
    var i: int = 0;
    while (i < 400) {
      x = (x * 31 + 17) % 23;
      input.add(x);
      i = i + 1;
    }
    Main.input = input;
  }

  def run(): int {
    if (Main.passes == null) { Main.setup(); }
    var code: IntArraySeq = Main.input;
    var round: int = 0;
    while (round < 2) {
      var i: int = 0;
      while (i < Main.passes.length()) {
        var pass: Pass = Main.passes.get(i) as Pass;
        code = pass.apply(code);
        i = i + 1;
      }
      round = round + 1;
    }
    var check: int = code.fold(0, fun (a: int, b: int): int => (a * 3 + b) & 1048575);
    return check + code.length();
  }
}
"""
