"""Optimization pipeline and budget tests."""

from repro.opts import OptimizationPipeline, OptimizerConfig
from repro.ir import build_graph, check_graph
from tests.execution import compare_tiers
from tests.helpers import SHAPES_RESULT, shapes_program


class TestBudget:
    def test_iteration_scaling(self):
        config = OptimizerConfig(max_iterations=3, budget_nodes=1000)
        assert config.iterations_for(500) == 3
        assert config.iterations_for(1500) == 2
        assert config.iterations_for(3000) == 1
        assert config.iterations_for(100_000) == 1

    def test_minimum_one_iteration(self):
        config = OptimizerConfig(max_iterations=1, budget_nodes=10)
        assert config.iterations_for(10 ** 6) == 1


class TestPipeline:
    def test_full_pipeline_preserves_semantics(self):
        program = shapes_program()
        graph = build_graph(program.lookup_method("Main", "run"), program)
        OptimizationPipeline(program).run(graph)
        check_graph(graph, program)
        compare_tiers(program, "Main", "run", [], graph=graph)

    def test_pipeline_shrinks_or_keeps_graph(self):
        program = shapes_program()
        graph = build_graph(program.lookup_method("Main", "run"), program)
        before = graph.node_count()
        OptimizationPipeline(program).run(graph)
        assert graph.node_count() <= before

    def test_switches_disable_phases(self):
        program = shapes_program()
        config = OptimizerConfig(
            enable_peeling=False, enable_rwe=False, enable_devirtualization=False
        )
        graph = build_graph(program.lookup_method("Main", "total"), program)
        OptimizationPipeline(program, config).run(graph)
        (invoke,) = graph.invokes()
        assert invoke.kind == "interface"  # devirt off

    def test_simplify_only_is_cheap_and_sound(self):
        program = shapes_program()
        graph = build_graph(program.lookup_method("Main", "run"), program)
        OptimizationPipeline(program).simplify_only(graph)
        check_graph(graph, program)
        from tests.execution import execute_graph

        result, _ = execute_graph(graph, program)
        assert result == SHAPES_RESULT

    def test_per_run_overrides(self):
        program = shapes_program()
        pipeline = OptimizationPipeline(program)
        graph = build_graph(program.lookup_method("Main", "run"), program)
        # Explicitly disabling peel/rwe must not break anything.
        pipeline.run(graph, peel=False, rwe=False)
        check_graph(graph, program)
