"""Installed-code bookkeeping.

Tracks compiled machine code per method and the total installed size —
the quantity the paper reports in Figure 10 and Table I, and the input
to the instruction-cache pressure model.

With observability enabled the cache records install/evict/hit/miss
metrics (``codecache.*``); a lookup miss means the call fell back to
the interpreter tier.
"""

from repro.obs import NULL_OBS


class CodeCache:
    """Mapping from methods to installed machine code."""

    def __init__(self, obs=None):
        self._code = {}
        #: OSR continuations, keyed ``(method, backedge bci)`` — one
        #: loop may be entered at several backedges and each gets its
        #: own continuation code. Sizes count into ``total_size``.
        self._osr_code = {}
        self.total_size = 0
        #: Total successful ``install`` calls (first installs *plus*
        #: replacements — the historical meaning, kept for dashboards).
        self.install_count = 0
        #: The subset of ``install_count`` that replaced existing code
        #: (recompilations); ``install_count - reinstalls`` is the
        #: number of distinct first installs.
        self.reinstalls = 0
        obs = obs if obs is not None else NULL_OBS
        self._obs = obs
        if obs.enabled:
            metrics = obs.metrics
            self._hits = metrics.counter("codecache.hits")
            self._misses = metrics.counter("codecache.misses")
            self._installs = metrics.counter("codecache.installs")
            self._reinstalls = metrics.counter("codecache.reinstalls")
            self._evictions = metrics.counter("codecache.evictions")
            self._bytes = metrics.gauge("codecache.installed_bytes")
        else:
            self._hits = None
            self._misses = None
            self._installs = None
            self._reinstalls = None
            self._evictions = None
            self._bytes = None

    def get(self, method):
        code = self._code.get(method)
        if self._hits is not None:
            (self._hits if code is not None else self._misses).inc()
        return code

    def __contains__(self, method):
        return method in self._code

    def install(self, method, code):
        # On reinstall the previous code's size leaves the total before
        # the new size enters, so ``total_size`` always equals the sum
        # of currently installed code — the *delta* across a reinstall
        # is legitimately negative when the recompile shrank the code.
        previous = self._code.get(method)
        if previous is not None:
            self.total_size -= previous.size
            self.reinstalls += 1
            if self._reinstalls is not None:
                self._reinstalls.inc()
        self._code[method] = code
        self.total_size += code.size
        self.install_count += 1
        if self._installs is not None:
            self._installs.inc()
            self._bytes.set(self.total_size)

    def evict(self, method):
        """Drop *method*'s installed code; returns True if it was present."""
        code = self._code.pop(method, None)
        if code is None:
            return False
        self.total_size -= code.size
        if self._evictions is not None:
            self._evictions.inc()
            self._bytes.set(self.total_size)
        return True

    # ------------------------------------------------------------------
    # OSR continuations
    # ------------------------------------------------------------------

    def get_osr(self, method, bci):
        """Installed OSR continuation for ``(method, bci)``, or None.

        Counts into the same hit/miss metrics as whole-method lookups —
        a miss here is the trigger for an OSR compilation.
        """
        code = self._osr_code.get((method, bci))
        if self._hits is not None:
            (self._hits if code is not None else self._misses).inc()
        return code

    def install_osr(self, method, bci, code):
        previous = self._osr_code.get((method, bci))
        if previous is not None:
            self.total_size -= previous.size
            self.reinstalls += 1
            if self._reinstalls is not None:
                self._reinstalls.inc()
        self._osr_code[(method, bci)] = code
        self.total_size += code.size
        self.install_count += 1
        if self._installs is not None:
            self._installs.inc()
            self._bytes.set(self.total_size)

    def evict_osr(self, method, bci):
        """Drop one OSR continuation; returns True if it was present."""
        code = self._osr_code.pop((method, bci), None)
        if code is None:
            return False
        self.total_size -= code.size
        if self._evictions is not None:
            self._evictions.inc()
            self._bytes.set(self.total_size)
        return True

    def osr_count(self):
        return len(self._osr_code)

    def installed_methods(self):
        return list(self._code)

    def size_of(self, method):
        code = self._code.get(method)
        return code.size if code is not None else 0

    def __len__(self):
        return len(self._code)
