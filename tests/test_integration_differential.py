"""Differential testing: every tier and every inlining policy must
compute exactly what the interpreter computes.

This is the system's strongest safety net: a random structured program
generator (hypothesis) produces minij programs exercising arithmetic,
control flow, virtual dispatch and closures; each is run through the
pure interpreter and through the JIT engine under each policy.
"""

import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.baselines import C2Inliner, GreedyInliner, tuned_inliner
from repro.jit import Engine, JitConfig
from repro.lang import compile_source
from repro.interp import Interpreter
from repro.runtime import VMState

POLICIES = [
    ("none", lambda: None),
    ("greedy", GreedyInliner),
    ("c2", C2Inliner),
    ("incremental", lambda: tuned_inliner(0.1)),
]


def assert_all_tiers_agree(source, iterations=6, hot_threshold=3):
    program = compile_source(source)
    vm = VMState(program)
    expected = Interpreter(vm).call_static("Main", "run")
    for name, factory in POLICIES:
        engine = Engine(
            program, JitConfig(hot_threshold=hot_threshold), inliner=factory()
        )
        for _ in range(iterations):
            result = engine.run_iteration("Main", "run")
            assert result.value == expected, (
                "policy %s diverged: %r != %r" % (name, result.value, expected)
            )


class TestHandPicked:
    def test_polymorphic_collection_pipeline(self):
        assert_all_tiers_agree(
            """
            object Main {
              def run(): int {
                var xs: ArraySeq = new ArraySeq(4);
                var i: int = 0;
                while (i < 30) { xs.add(new Box(i * 7 % 13)); i = i + 1; }
                var total: int = xs.sumBy(fun (b: Box): int => b.get());
                var big: int = xs.count(fun (b: Box): bool => b.get() > 6);
                return total * 100 + big;
              }
            }
            """
        )

    def test_figure1_foreach_shape(self):
        """The paper's motivating example, almost verbatim."""
        assert_all_tiers_agree(
            """
            object Main {
              def log(xs: Seq): int {
                var sum: Box = new Box(0);
                xs.foreach(fun (x: Box): void {
                  sum.value = sum.value + x.get();
                });
                return sum.value;
              }
              def run(): int {
                var args: ArraySeq = new ArraySeq(4);
                var i: int = 0;
                while (i < 25) { args.add(new Box(i)); i = i + 1; }
                return Main.log(args);
              }
            }
            """
        )

    def test_deep_recursion_with_dispatch(self):
        assert_all_tiers_agree(
            """
            trait Node { def sum(): int; }
            class Leaf implements Node {
              var v: int;
              def init(v: int): void { this.v = v; }
              def sum(): int { return this.v; }
            }
            class Pair implements Node {
              var l: Node;
              var r: Node;
              def init(l: Node, r: Node): void { this.l = l; this.r = r; }
              def sum(): int { return this.l.sum() + this.r.sum(); }
            }
            object Main {
              def build(d: int, s: int): Node {
                if (d == 0) { return new Leaf(s); }
                return new Pair(Main.build(d - 1, s * 2), Main.build(d - 1, s * 2 + 1));
              }
              def run(): int { return Main.build(6, 1).sum(); }
            }
            """
        )

    def test_exceptional_control_stays_consistent(self):
        assert_all_tiers_agree(
            """
            object Main {
              def safeDiv(a: int, b: int): int {
                if (b == 0) { return 0 - 1; }
                return a / b;
              }
              def run(): int {
                var acc: int = 0;
                var i: int = 0 - 5;
                while (i < 5) {
                  acc = acc + Main.safeDiv(100, i);
                  i = i + 1;
                }
                return acc;
              }
            }
            """
        )


_EXPRS = [
    "a + b", "a - b", "a * 3", "b % 7 + 1", "(a & b) | 5",
    "a << 1", "b >> 2", "a ^ b",
]
_CONDS = ["a < b", "a == b", "a > 10", "(a & 1) == 0", "b != 0"]


@st.composite
def random_program(draw):
    """A random but well-formed minij Main.run exercising statements."""
    lines = ["var a: int = %d;" % draw(st.integers(-20, 20))]
    lines.append("var b: int = %d;" % draw(st.integers(1, 20)))
    statements = draw(st.integers(2, 6))
    for index in range(statements):
        kind = draw(st.integers(0, 2))
        expr = draw(st.sampled_from(_EXPRS))
        cond = draw(st.sampled_from(_CONDS))
        if kind == 0:
            lines.append("a = %s;" % expr)
        elif kind == 1:
            lines.append(
                "if (%s) { a = %s; } else { b = b + 1; }" % (cond, expr)
            )
        else:
            lines.append(
                "var i%d: int = 0; while (i%d < %d) { a = a + (%s); i%d = i%d + 1; }"
                % (index, index, draw(st.integers(1, 8)), expr, index, index)
            )
    lines.append("return a * 31 + b;")
    return (
        "object Main { def run(): int { %s } }" % " ".join(lines)
    )


class TestRandomPrograms:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(random_program())
    def test_policies_agree_on_random_programs(self, source):
        assert_all_tiers_agree(source, iterations=4, hot_threshold=2)


class TestBenchmarkSubset:
    @pytest.mark.parametrize("name", ["factorie", "jython", "stmbench7"])
    def test_benchmark_tier_agreement(self, name):
        from repro.bench.suite import get_benchmark

        spec = get_benchmark(name)
        program = spec.load()
        vm = VMState(program)
        interp = Interpreter(vm)
        expected = [interp.call_static("Main", "run") for _ in range(4)]
        engine = Engine(
            program, JitConfig(hot_threshold=25), inliner=tuned_inliner(0.1)
        )
        actual = [engine.run_iteration("Main", "run").value for _ in range(4)]
        assert actual == expected
