"""Run a minij program on the tiered VM.

Examples::

    python -m repro.tools.run program.minij
    python -m repro.tools.run program.minij --iterations 20 --inliner greedy
    python -m repro.tools.run program.minij --entry Main.run --stats
"""

import argparse

from repro.jit import Engine, JitConfig
from repro.tools.common import (
    add_inliner_argument,
    compile_file,
    make_inliner,
    method_argument,
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.tools.run", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("program", help="minij source file (or - for stdin)")
    parser.add_argument(
        "--entry", type=method_argument, default=("Main", "run"),
        help="entry point as Class.method (default Main.run)",
    )
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--hot-threshold", type=int, default=25)
    parser.add_argument(
        "--stats", action="store_true", help="print per-iteration cycle breakdown"
    )
    parser.add_argument(
        "--interpret-only", action="store_true", help="disable the compiler"
    )
    add_inliner_argument(parser)
    args = parser.parse_args(argv)

    program = compile_file(args.program)
    engine = Engine(
        program,
        JitConfig(
            hot_threshold=args.hot_threshold,
            compile_enabled=not args.interpret_only,
        ),
        inliner=None if args.interpret_only else make_inliner(args.inliner),
    )
    class_name, method_name = args.entry
    if args.stats:
        print("iter   value        total   interp  compiled  jit-time  installed")
    result = None
    for index in range(args.iterations):
        result = engine.run_iteration(class_name, method_name)
        if args.stats:
            print("%4d %8s %12d %8d %9d %9d %10d" % (
                index, result.value, result.total_cycles,
                result.interpreted_cycles, result.compiled_cycles,
                result.compile_cycles, result.installed_size,
            ))
    print("result: %s" % (result.value,))
    print(
        "steady: %d cycles/iteration, %d methods compiled, %d machine instrs"
        % (result.total_cycles, len(engine.code_cache), engine.code_cache.total_size)
    )
    if engine.vm.output:
        shown = engine.vm.output[:20]
        suffix = " ..." if len(engine.vm.output) > 20 else ""
        print("output: %s%s" % (" ".join(map(str, shown)), suffix))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
