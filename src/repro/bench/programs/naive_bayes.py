"""naive-bayes — multinomial naive Bayes (Spark MLLib).

Training accumulates per-class feature counts; prediction sums log
likelihoods over sparse feature vectors. We model both phases against a
``ClassStats`` abstraction with small accessor methods — the per-token
inner loop is a chain of tiny calls that the paper's inliner collapses
(≈1.8× over C2).
"""

DESCRIPTION = "count accumulation and log-likelihood scoring per class"
ITERATIONS = 14

SOURCE = """
class ClassStats {
  var counts: int[];
  var total: int;
  var docs: int;
  def init(features: int): void {
    this.counts = new int[features];
    this.total = 0;
    this.docs = 0;
  }
  @inline def observe(feature: int, count: int): void {
    this.counts[feature] = this.counts[feature] + count;
    this.total = this.total + count;
  }
  @inline def logLikelihood(feature: int): int {
    // log((count+1)/(total+V)) in fixed point, via a cheap log2 proxy.
    var num: int = this.counts[feature] + 1;
    var den: int = this.total + this.counts.length;
    return Main.log2fp(num) - Main.log2fp(den);
  }
}

class Model {
  var classes: ArraySeq;
  def init(k: int, features: int): void {
    this.classes = new ArraySeq(k);
    var i: int = 0;
    while (i < k) { this.classes.add(new ClassStats(features)); i = i + 1; }
  }
  def stats(k: int): ClassStats { return this.classes.get(k) as ClassStats; }
  def predict(doc: int[]): int {
    var best: int = 0;
    var bestScore: int = 0 - 1000000000;
    var k: int = 0;
    while (k < this.classes.length()) {
      var s: ClassStats = this.stats(k);
      var score: int = Main.log2fp(s.docs + 1);
      var j: int = 0;
      while (j < doc.length) {
        if (doc[j] > 0) {
          score = score + s.logLikelihood(j) * doc[j];
        }
        j = j + 1;
      }
      if (score > bestScore) { bestScore = score; best = k; }
      k = k + 1;
    }
    return best;
  }
}

object Main {
  static var docs: ArraySeq;     // int[] feature vectors
  static var labels: int[];

  def log2fp(x: int): int {
    // 8.8 fixed-point floor(log2), cheap and monotone.
    var v: int = x;
    var log: int = 0;
    while (v > 1) { v = v >> 1; log = log + 256; }
    return log;
  }

  def setup(): void {
    var n: int = 40;
    var features: int = 16;
    var docs: ArraySeq = new ArraySeq(n);
    var labels: int[] = new int[n];
    var x: int = 11;
    var i: int = 0;
    while (i < n) {
      var doc: int[] = new int[features];
      var label: int = i % 3;
      var j: int = 0;
      while (j < features) {
        x = (x * 37 + 5) % 97;
        if ((j % 3) == label && x > 30) { doc[j] = 1 + x % 4; }
        else { if (x > 80) { doc[j] = 1; } }
        j = j + 1;
      }
      docs.add(doc);
      labels[i] = label;
      i = i + 1;
    }
    Main.docs = docs;
    Main.labels = labels;
  }

  def run(): int {
    if (Main.docs == null) { Main.setup(); }
    var features: int = 16;
    var model: Model = new Model(3, features);
    var i: int = 0;
    while (i < Main.docs.length()) {
      var doc: int[] = Main.docs.get(i) as int[];
      var s: ClassStats = model.stats(Main.labels[i]);
      s.docs = s.docs + 1;
      var j: int = 0;
      while (j < doc.length) {
        if (doc[j] > 0) { s.observe(j, doc[j]); }
        j = j + 1;
      }
      i = i + 1;
    }
    var correct: int = 0;
    i = 0;
    while (i < Main.docs.length()) {
      var doc2: int[] = Main.docs.get(i) as int[];
      if (model.predict(doc2) == Main.labels[i]) { correct = correct + 1; }
      i = i + 1;
    }
    return correct;
  }
}
"""
