"""kiama — strategy-based term rewriting (Scala).

kiama composes rewrite strategies (sequence, choice, all-children) into
deeply nested closures applied over term trees. We model exactly that:
a ``Strategy`` trait with combinator classes, driving arithmetic-term
simplification to a fixpoint. Strategy composition is the "optimizable
unit spans many tiny methods" pattern that clustering exists for
(paper: ≈1.45× over C2).
"""

DESCRIPTION = "combinator-composed rewrite strategies over term trees"
ITERATIONS = 14

SOURCE = """
class Term {
  var op: int;       // 0 literal, 1 add, 2 mul
  var value: int;
  var left: Term;
  var right: Term;
  def init(op: int, value: int, left: Term, right: Term): void {
    this.op = op; this.value = value; this.left = left; this.right = right;
  }
}

trait Strategy {
  // Returns the rewritten term, or null when the strategy fails.
  def apply(t: Term): Term;
}

class FoldConst implements Strategy {
  def apply(t: Term): Term {
    if (t.op == 0) { return null; }
    if (t.left.op == 0 && t.right.op == 0) {
      if (t.op == 1) { return new Term(0, t.left.value + t.right.value, null, null); }
      return new Term(0, t.left.value * t.right.value, null, null);
    }
    return null;
  }
}

class MulOne implements Strategy {
  def apply(t: Term): Term {
    if (t.op == 2 && t.right.op == 0 && t.right.value == 1) { return t.left; }
    if (t.op == 2 && t.left.op == 0 && t.left.value == 1) { return t.right; }
    return null;
  }
}

class Choice implements Strategy {
  var first: Strategy;
  var second: Strategy;
  def init(a: Strategy, b: Strategy): void { this.first = a; this.second = b; }
  def apply(t: Term): Term {
    var r: Term = this.first.apply(t);
    if (r != null) { return r; }
    return this.second.apply(t);
  }
}

class BottomUp implements Strategy {
  var inner: Strategy;
  def init(inner: Strategy): void { this.inner = inner; }
  def apply(t: Term): Term {
    var node: Term = t;
    if (node.op != 0) {
      var l: Term = this.apply(node.left);
      var r: Term = this.apply(node.right);
      if (l != null || r != null) {
        var nl: Term = node.left;
        var nr: Term = node.right;
        if (l != null) { nl = l; }
        if (r != null) { nr = r; }
        node = new Term(node.op, 0, nl, nr);
      }
    }
    var rewritten: Term = this.inner.apply(node);
    if (rewritten != null) { return rewritten; }
    if (node == t) { return null; }
    return node;
  }
}

object Main {
  static var strategy: Strategy;

  def build(depth: int, seed: int): Term {
    if (depth == 0) {
      return new Term(0, 1 + (seed % 3), null, null);
    }
    var op: int = 1 + (seed & 1);
    return new Term(op, 0, Main.build(depth - 1, seed * 3 + 1),
                           Main.build(depth - 1, seed * 5 + 2));
  }

  def measure(t: Term): int {
    if (t.op == 0) { return t.value & 1023; }
    return 1 + Main.measure(t.left) + Main.measure(t.right);
  }

  def run(): int {
    if (Main.strategy == null) {
      Main.strategy = new BottomUp(new Choice(new FoldConst(), new MulOne()));
    }
    var total: int = 0;
    var round: int = 0;
    while (round < 3) {
      var tree: Term = Main.build(6, 3 + round);
      var result: Term = Main.strategy.apply(tree);
      if (result == null) { result = tree; }
      total = total + Main.measure(result);
      round = round + 1;
    }
    return total;
  }
}
"""
