"""Class and field definitions for the miniature object model."""

from repro.errors import BytecodeError


class FieldDef:
    """A field declaration.

    Attributes:
        name: field name, unique within the declaring class.
        type: declared type descriptor (see :mod:`repro.bytecode.types`).
        is_static: True for class-level fields.
    """

    __slots__ = ("name", "type", "is_static")

    def __init__(self, name, type, is_static=False):
        self.name = name
        self.type = type
        self.is_static = is_static

    def __repr__(self):
        return "<FieldDef %s%s: %s>" % (
            "static " if self.is_static else "",
            self.name,
            self.type,
        )


class ClassDef:
    """A class or interface definition.

    The model mirrors the JVM's: single inheritance between classes, any
    number of implemented interfaces, and interfaces that may carry
    default method bodies (which is how minij traits are lowered — the
    paper's Figure 1 relies on a trait with a concrete ``foreach``).

    Attributes:
        name: globally unique class name.
        superclass: name of the superclass, or None for the root class.
        interfaces: names of directly implemented interfaces.
        fields: mapping of field name to :class:`FieldDef`.
        methods: mapping of method name to :class:`Method` (declared
            here only; inherited methods are resolved by the linker).
        is_interface: True for interfaces.
        is_abstract: abstract classes cannot be instantiated.
    """

    __slots__ = (
        "name",
        "superclass",
        "interfaces",
        "fields",
        "methods",
        "is_interface",
        "is_abstract",
    )

    def __init__(
        self,
        name,
        superclass="Object",
        interfaces=(),
        is_interface=False,
        is_abstract=False,
    ):
        self.name = name
        self.superclass = None if is_interface or name == "Object" else superclass
        self.interfaces = list(interfaces)
        self.fields = {}
        self.methods = {}
        self.is_interface = is_interface
        self.is_abstract = is_abstract or is_interface

    def add_field(self, field):
        if field.name in self.fields:
            raise BytecodeError(
                "duplicate field %s.%s" % (self.name, field.name)
            )
        self.fields[field.name] = field
        return field

    def add_method(self, method):
        if method.name in self.methods:
            raise BytecodeError(
                "duplicate method %s.%s" % (self.name, method.name)
            )
        method.klass = self
        self.methods[method.name] = method
        return method

    def declared_method(self, name):
        return self.methods.get(name)

    def __repr__(self):
        kind = "interface" if self.is_interface else "class"
        return "<ClassDef %s %s>" % (kind, self.name)
