"""Tests for MethodBuilder and the text assembler/disassembler."""

import pytest

from repro.bytecode import (
    MethodBuilder,
    Op,
    assemble_program,
    disassemble_method,
    disassemble_program,
    verify_program,
)
from repro.errors import BytecodeError
from tests.helpers import run_static


class TestMethodBuilder:
    def test_label_resolution(self):
        b = MethodBuilder("f", ["int"], "int", is_static=True)
        end = b.new_label("end")
        b.load(0).const(0).ge().if_true(end)
        b.const(0).load(0).sub().retv()
        b.place(end).load(0).retv()
        method = b.build()
        branch = method.code[3]
        assert branch.op == Op.IF
        assert method.code[branch.target].op == Op.LOAD

    def test_unplaced_label_rejected(self):
        b = MethodBuilder("f", [], "void", is_static=True)
        dangling = b.new_label()
        b.goto(dangling)
        with pytest.raises(BytecodeError):
            b.build()

    def test_double_placement_rejected(self):
        b = MethodBuilder("f", [], "void", is_static=True)
        label = b.new_label()
        b.place(label)
        with pytest.raises(BytecodeError):
            b.place(label)

    def test_alloc_local_past_params(self):
        b = MethodBuilder("f", ["int", "int"], "void", is_static=True)
        assert b.alloc_local() == 2
        assert b.alloc_local() == 3
        b.ret()
        assert b.build().max_locals == 4

    def test_instance_method_reserves_receiver_slot(self):
        b = MethodBuilder("m", ["int"], "void")
        assert b.alloc_local() == 2  # 0 = this, 1 = param

    def test_max_locals_tracks_stores(self):
        b = MethodBuilder("f", [], "void", is_static=True)
        b.const(1).store(5).ret()
        assert b.build().max_locals == 6


class TestAssembler:
    PROGRAM = """
    class Counter extends Object {
      field value: int
      static field total: int
      method bump(int) -> int {
        LOAD 0
        GETFIELD Counter value
        LOAD 1
        ADD
        STORE 2
        LOAD 0
        LOAD 2
        PUTFIELD Counter value
        LOAD 2
        RETV
      }
    }
    class Main extends Object {
      static method run() -> int {
        NEW Counter
        STORE 0
        CONST 0
        STORE 1
      loop:
        LOAD 1
        CONST 10
        GE
        IF done
        LOAD 0
        LOAD 1
        INVOKEVIRTUAL Counter bump
        POP
        LOAD 1
        CONST 1
        ADD
        STORE 1
        GOTO loop
      done:
        LOAD 0
        GETFIELD Counter value
        RETV
      }
    }
    """

    def test_assemble_and_execute(self):
        program = assemble_program(self.PROGRAM)
        verify_program(program)
        result, _vm, _interp = run_static(program, "Main", "run")
        assert result == sum(range(10))

    def test_unknown_label_rejected(self):
        bad = """
        class A extends Object {
          static method f() -> void {
            GOTO missing
            RET
          }
        }
        """
        with pytest.raises(BytecodeError):
            assemble_program(bad)

    def test_duplicate_label_rejected(self):
        bad = """
        class A extends Object {
          static method f() -> void {
          x:
          x:
            RET
          }
        }
        """
        with pytest.raises(BytecodeError):
            assemble_program(bad)

    def test_abstract_method_declaration(self):
        text = """
        interface Greeter {
          abstract method greet(int) -> int
        }
        """
        program = assemble_program(text)
        method = program.klass("Greeter").methods["greet"]
        assert method.is_abstract
        assert method.param_types == ["int"]

    def test_comments_ignored(self):
        text = """
        # a whole-line comment
        class A extends Object {
          static method f() -> int {
            CONST 42  # trailing comment
            RETV
          }
        }
        """
        program = assemble_program(text)
        result, _, _ = run_static(program, "A", "f")
        assert result == 42


class TestDisassembler:
    def test_roundtrip_readability(self):
        program = assemble_program(TestAssembler.PROGRAM)
        text = disassemble_method(program.klass("Counter").methods["bump"])
        assert "GETFIELD" in text
        assert "bump" in text
        whole = disassemble_program(program)
        assert "class Counter" in whole
        assert "static field total: int" in whole
