"""The profiling bytecode interpreter.

One :class:`Interpreter` executes guest methods against a
:class:`~repro.runtime.vmstate.VMState`, recording profiles into a
:class:`~repro.interp.profiles.ProfileStore` as it goes and counting
executed bytecodes (the JIT engine converts that count into interpreted
cycles).

Dispatch is pluggable: every guest call goes through ``self.dispatch``,
which the tiered engine overrides to route hot methods to compiled
code. By default calls recurse into the interpreter itself.

Two executors are available, selected per interpreter:

- the **classic** tier: the ``if/elif`` chain in :meth:`Interpreter._run`,
  kept as the reference semantics;
- the **pre-decoded** tier (``predecode=True`` or ``REPRO_INTERP=predecode``):
  methods are compiled once into a dense table of pre-bound handler
  closures (:mod:`repro.interp.predecode`) and driven by a three-line
  dispatch loop. Bit-identical to classic by contract.
"""

import os

from repro.bytecode.opcodes import Op
from repro.bytecode import types as bt
from repro.interp.predecode import (
    OSR_MISS,
    RET_VALUE,
    predecode as predecode_method,
)
from repro.runtime.values import ArrayRef, ObjRef, NULL
from repro.runtime.intrinsics import intrinsic_function

# Guest integer semantics live in repro.runtime.int64 so that the
# interpreter, the register machine and the canonicalizer share one
# implementation; the re-export keeps the historical import path alive.
from repro.runtime.int64 import int_div, int_rem, wrap64
from repro.errors import (
    BoundsTrap,
    CastTrap,
    NullPointerTrap,
    VMError,
)


class Interpreter:
    """Executes bytecode with profiling.

    Args:
        vm: the :class:`~repro.runtime.vmstate.VMState` to run against.
        profiles: a :class:`~repro.interp.profiles.ProfileStore`;
            created on the fly when omitted.
        dispatch: optional callable ``(method, args) -> result`` used for
            every guest call; defaults to :meth:`execute` (pure
            interpretation all the way down).
        obs: optional :class:`~repro.obs.Observability`; when enabled,
            interpreted calls are counted (``interp.calls``).
        predecode: selects the executor. ``True`` uses the pre-decoded
            handler-table tier, ``False`` the classic loop; ``None``
            (default) consults the ``REPRO_INTERP`` environment
            variable (``predecode`` enables the fast tier).
    """

    def __init__(self, vm, profiles=None, dispatch=None, obs=None,
                 predecode=None):
        from repro.interp.profiles import ProfileStore

        self.vm = vm
        self.program = vm.program
        self.profiles = profiles if profiles is not None else ProfileStore()
        self.dispatch = dispatch if dispatch is not None else self.execute
        if predecode is None:
            predecode = (
                os.environ.get("REPRO_INTERP", "").strip().lower()
                == "predecode"
            )
        self.predecode = bool(predecode)
        self.ops_executed = 0
        self.max_depth = 0
        self._depth = 0
        self._current_method = None  # caller context for profiling
        # Per-(method[, caller]) memo for profiles.of() plus, in the
        # fast tier, the pre-decoded handler tables bound to those
        # profile objects. Both are invalidated by generation bumps
        # (ProfileStore.clear / Program.add_class).
        self._context_sensitive = self.profiles.context_sensitive
        self._profile_memo = {}
        self._predecode_tables = {}
        # The store itself is part of the key: *replacing* the
        # ProfileStore on a live interpreter (not just mutating it) must
        # also invalidate, even when the new store's generation counter
        # happens to match the old one.
        self._cache_generation = (
            self.profiles,
            self.profiles.generation,
            self.program.generation,
        )
        # Pre-bound counter: one None check per interpreted call when
        # observability is off, no registry lookups when it is on.
        self._calls_counter = None
        if obs is not None and obs.enabled:
            self._calls_counter = obs.metrics.counter("interp.calls")
        # On-stack replacement: the engine installs ``osr_hook`` (called
        # as ``osr_hook(method, bci, target, locals_, stack)`` right
        # after a backedge whose counter reached ``osr_threshold`` is
        # recorded). The hook either finishes the frame in compiled
        # code — its return value becomes the method's result — or
        # returns :data:`OSR_MISS` to keep interpreting. Both executor
        # tiers consult the same two attributes.
        self.osr_hook = None
        self.osr_threshold = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def call_static(self, class_name, method_name, args=()):
        """Resolve and run a static method through the dispatcher."""
        method = self.program.lookup_method(class_name, method_name)
        return self.dispatch(method, list(args))

    def run_main(self, class_name, args=()):
        return self.call_static(class_name, "main", args)

    # ------------------------------------------------------------------
    # Core execution
    # ------------------------------------------------------------------

    def execute(self, method, args):
        """Interpret *method* with *args* (receiver first if instance)."""
        if method.is_native:
            return intrinsic_function(method.name)(self.vm, *args)
        if method.is_abstract:
            raise VMError("abstract method called: %s" % method.qualified_name)
        if self._calls_counter is not None:
            self._calls_counter.inc()
        caller = self._current_method
        generation = (
            self.profiles,
            self.profiles.generation,
            self.program.generation,
        )
        if generation != self._cache_generation:
            self._profile_memo.clear()
            self._predecode_tables.clear()
            self._context_sensitive = self.profiles.context_sensitive
            self._cache_generation = generation
        key = (method, caller) if self._context_sensitive else method
        profile = self._profile_memo.get(key)
        if profile is None:
            profile = self.profiles.of(method, caller=caller)
            self._profile_memo[key] = profile
        profile.invocations += 1
        self._depth += 1
        if self._depth > self.max_depth:
            self.max_depth = self._depth
        self._current_method = method
        try:
            if self.predecode:
                return self._run_predecoded(method, args, profile, key)
            return self._run(method, args, profile)
        finally:
            self._depth -= 1
            self._current_method = caller

    def resume(self, method, locals_, stack, pc):
        """Resume a deoptimized frame of *method* at *pc*.

        Called by :func:`repro.deopt.resume_frames` with locals and an
        operand stack materialized from compiled registers. The frame
        runs under full profiling — it counts as an invocation and
        records branches/receivers, which is exactly the re-profiling
        that lets the engine recompile without the refuted speculation.
        """
        if method.is_native or method.is_abstract:
            raise VMError("cannot resume %s" % method.qualified_name)
        if self._calls_counter is not None:
            self._calls_counter.inc()
        caller = self._current_method
        generation = (
            self.profiles,
            self.profiles.generation,
            self.program.generation,
        )
        if generation != self._cache_generation:
            self._profile_memo.clear()
            self._predecode_tables.clear()
            self._context_sensitive = self.profiles.context_sensitive
            self._cache_generation = generation
        key = (method, caller) if self._context_sensitive else method
        profile = self._profile_memo.get(key)
        if profile is None:
            profile = self.profiles.of(method, caller=caller)
            self._profile_memo[key] = profile
        profile.invocations += 1
        self._depth += 1
        if self._depth > self.max_depth:
            self.max_depth = self._depth
        self._current_method = method
        try:
            if self.predecode:
                return self._run_predecoded(
                    method, None, profile, key,
                    locals_=locals_, stack=stack, pc=pc,
                )
            return self._run(
                method, None, profile, locals_=locals_, stack=stack, pc=pc
            )
        finally:
            self._depth -= 1
            self._current_method = caller

    def _run_predecoded(self, method, args, profile, key,
                        locals_=None, stack=None, pc=0):
        """Drive one frame through the pre-decoded handler table."""
        table = self._predecode_tables.get(key)
        if table is None:
            table = predecode_method(method, profile, self)
            self._predecode_tables[key] = table
        if locals_ is None:
            locals_ = args + [NULL] * (method.max_locals - len(args))
            stack = []
        ops = 0
        # Like the classic loop, the frame's op count reaches
        # ``ops_executed`` only on a normal return — a propagating trap
        # abandons it.
        while pc >= 0:
            pc = table[pc](stack, locals_)
            ops += 1
        self.ops_executed += ops
        if pc == RET_VALUE:
            return stack.pop()
        return None

    def _run(self, method, args, profile, locals_=None, stack=None, pc=0):
        code = method.code
        if locals_ is None:
            locals_ = args + [NULL] * (method.max_locals - len(args))
            stack = []
        program = self.program
        vm = self.vm
        ops = 0
        while True:
            instr = code[pc]
            op = instr.op
            ops += 1
            if op == Op.LOAD:
                stack.append(locals_[instr.args[0]])
            elif op == Op.CONST:
                stack.append(instr.args[0])
            elif op == Op.STORE:
                locals_[instr.args[0]] = stack.pop()
            elif op == Op.ADD:
                b = stack.pop()
                stack.append(wrap64(stack.pop() + b))
            elif op == Op.SUB:
                b = stack.pop()
                stack.append(wrap64(stack.pop() - b))
            elif op == Op.MUL:
                b = stack.pop()
                stack.append(wrap64(stack.pop() * b))
            elif op == Op.DIV:
                b = stack.pop()
                stack.append(wrap64(int_div(stack.pop(), b)))
            elif op == Op.REM:
                b = stack.pop()
                stack.append(wrap64(int_rem(stack.pop(), b)))
            elif op == Op.NEG:
                stack.append(wrap64(-stack.pop()))
            elif op == Op.AND:
                b = stack.pop()
                stack.append(stack.pop() & b)
            elif op == Op.OR:
                b = stack.pop()
                stack.append(stack.pop() | b)
            elif op == Op.XOR:
                b = stack.pop()
                stack.append(stack.pop() ^ b)
            elif op == Op.SHL:
                b = stack.pop() & 63
                stack.append(wrap64(stack.pop() << b))
            elif op == Op.SHR:
                b = stack.pop() & 63
                stack.append(stack.pop() >> b)
            elif op == Op.EQ:
                b = stack.pop()
                stack.append(1 if stack.pop() == b else 0)
            elif op == Op.NE:
                b = stack.pop()
                stack.append(1 if stack.pop() != b else 0)
            elif op == Op.LT:
                b = stack.pop()
                stack.append(1 if stack.pop() < b else 0)
            elif op == Op.LE:
                b = stack.pop()
                stack.append(1 if stack.pop() <= b else 0)
            elif op == Op.GT:
                b = stack.pop()
                stack.append(1 if stack.pop() > b else 0)
            elif op == Op.GE:
                b = stack.pop()
                stack.append(1 if stack.pop() >= b else 0)
            elif op == Op.REF_EQ:
                b = stack.pop()
                stack.append(1 if stack.pop() is b else 0)
            elif op == Op.REF_NE:
                b = stack.pop()
                stack.append(1 if stack.pop() is not b else 0)
            elif op == Op.IF:
                condition = stack.pop() != 0
                profile.branch(pc).record(condition)
                target = instr.target
                if condition:
                    if target <= pc:
                        profile.record_backedge(pc)
                        if (
                            self.osr_hook is not None
                            and profile.backedge_count(pc)
                            >= self.osr_threshold
                        ):
                            # The condition is already popped, so the
                            # operand stack is exactly the loop-header
                            # entry stack.
                            result = self.osr_hook(
                                method, pc, target, locals_, stack
                            )
                            if result is not OSR_MISS:
                                self.ops_executed += ops
                                return (
                                    result
                                    if method.returns_value()
                                    else None
                                )
                    pc = target
                    continue
            elif op == Op.GOTO:
                target = instr.target
                if target <= pc:
                    profile.record_backedge(pc)
                    if (
                        self.osr_hook is not None
                        and profile.backedge_count(pc) >= self.osr_threshold
                    ):
                        result = self.osr_hook(
                            method, pc, target, locals_, stack
                        )
                        if result is not OSR_MISS:
                            self.ops_executed += ops
                            return (
                                result if method.returns_value() else None
                            )
                pc = target
                continue
            elif op == Op.RET:
                self.ops_executed += ops
                return None
            elif op == Op.RETV:
                self.ops_executed += ops
                return stack.pop()
            elif op == Op.NULL:
                stack.append(NULL)
            elif op == Op.POP:
                stack.pop()
            elif op == Op.DUP:
                stack.append(stack[-1])
            elif op == Op.NEW:
                stack.append(vm.allocate(instr.args[0]))
            elif op == Op.NEWARRAY:
                length = stack.pop()
                if length < 0:
                    raise BoundsTrap("negative array length %d" % length)
                stack.append(vm.allocate_array(instr.args[0], length))
            elif op == Op.ALOAD:
                index = stack.pop()
                array = stack.pop()
                if array is NULL:
                    raise NullPointerTrap("ALOAD")
                if not (0 <= index < len(array.data)):
                    raise BoundsTrap("%d / %d" % (index, len(array.data)))
                stack.append(array.data[index])
            elif op == Op.ASTORE:
                value = stack.pop()
                index = stack.pop()
                array = stack.pop()
                if array is NULL:
                    raise NullPointerTrap("ASTORE")
                if not (0 <= index < len(array.data)):
                    raise BoundsTrap("%d / %d" % (index, len(array.data)))
                array.data[index] = value
            elif op == Op.ARRAYLEN:
                array = stack.pop()
                if array is NULL:
                    raise NullPointerTrap("ARRAYLEN")
                stack.append(len(array.data))
            elif op == Op.GETFIELD:
                obj = stack.pop()
                if obj is NULL:
                    raise NullPointerTrap(
                        "GETFIELD %s.%s" % (instr.args[0], instr.args[1])
                    )
                stack.append(obj.fields[instr.args[1]])
            elif op == Op.PUTFIELD:
                value = stack.pop()
                obj = stack.pop()
                if obj is NULL:
                    raise NullPointerTrap(
                        "PUTFIELD %s.%s" % (instr.args[0], instr.args[1])
                    )
                obj.fields[instr.args[1]] = value
            elif op == Op.GETSTATIC:
                stack.append(vm.get_static(instr.args[0], instr.args[1]))
            elif op == Op.PUTSTATIC:
                vm.put_static(instr.args[0], instr.args[1], stack.pop())
            elif op == Op.INSTANCEOF:
                value = stack.pop()
                if value is NULL:
                    profile.typecheck(pc).record(None)
                    stack.append(0)
                else:
                    type_name = (
                        value.class_name
                        if isinstance(value, ObjRef)
                        else value.type_name
                    )
                    profile.typecheck(pc).record(type_name)
                    stack.append(
                        1 if program.is_subtype(type_name, instr.args[0]) else 0
                    )
            elif op == Op.CHECKCAST:
                value = stack[-1]
                if value is NULL:
                    profile.typecheck(pc).record(None)
                else:
                    type_name = (
                        value.class_name
                        if isinstance(value, ObjRef)
                        else value.type_name
                    )
                    # Recorded before the trap: a site that only ever
                    # fails its cast still reads as polymorphic/typed
                    # rather than unexecuted.
                    profile.typecheck(pc).record(type_name)
                    if not program.is_subtype(type_name, instr.args[0]):
                        raise CastTrap(
                            "%s -> %s" % (type_name, instr.args[0])
                        )
            elif op == Op.INVOKESTATIC:
                cname, mname = instr.args
                callee = program.lookup_method(cname, mname)
                profile.record_callsite(pc)
                argc = len(callee.param_types)
                call_args = stack[len(stack) - argc :] if argc else []
                del stack[len(stack) - argc :]
                result = self.dispatch(callee, call_args)
                if callee.return_type != bt.VOID:
                    stack.append(result)
            elif op in (Op.INVOKEVIRTUAL, Op.INVOKEINTERFACE):
                cname, mname = instr.args
                declared = program.lookup_method(cname, mname)
                argc = 1 + len(declared.param_types)
                call_args = stack[len(stack) - argc :]
                del stack[len(stack) - argc :]
                receiver = call_args[0]
                if receiver is NULL:
                    raise NullPointerTrap("call %s.%s" % (cname, mname))
                receiver_type = (
                    receiver.class_name
                    if isinstance(receiver, ObjRef)
                    else receiver.type_name
                )
                profile.record_callsite(pc)
                profile.receiver(pc).record(receiver_type)
                if isinstance(receiver, ArrayRef):
                    raise VMError("virtual call on array receiver")
                callee = program.resolve_method(receiver_type, mname)
                result = self.dispatch(callee, call_args)
                if declared.return_type != bt.VOID:
                    stack.append(result)
            elif op == Op.INVOKESPECIAL:
                cname, mname = instr.args
                callee = program.resolve_method(cname, mname)
                argc = 1 + len(callee.param_types)
                call_args = stack[len(stack) - argc :]
                del stack[len(stack) - argc :]
                if call_args[0] is NULL:
                    raise NullPointerTrap("special call %s.%s" % (cname, mname))
                profile.record_callsite(pc)
                result = self.dispatch(callee, call_args)
                if callee.return_type != bt.VOID:
                    stack.append(result)
            else:
                raise VMError("unhandled opcode %s" % op)
            pc += 1
