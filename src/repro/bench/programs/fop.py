"""fop — XSL-FO document layout.

fop builds a formatting-object tree and lays it out recursively. We
model the layout pass: a node hierarchy (text leaves, boxes, columns)
whose virtual ``layout(width)`` computes heights bottom-up, plus a
second measurement traversal. Virtual recursion over a modest class
hierarchy — devirtualizable at the leaves once context is inlined.
"""

DESCRIPTION = "recursive layout over a formatting-object tree"
ITERATIONS = 12

SOURCE = """
trait FoNode {
  def layout(width: int): int;
  def minWidth(): int;
}

class TextLeaf implements FoNode {
  var chars: int;
  def init(chars: int): void { this.chars = chars; }
  def layout(width: int): int {
    var perLine: int = width / 7;
    if (perLine < 1) { perLine = 1; }
    var lines: int = (this.chars + perLine - 1) / perLine;
    return lines * 12;
  }
  def minWidth(): int { return 7; }
}

class BoxNode implements FoNode {
  var child: FoNode;
  var padding: int;
  def init(child: FoNode, padding: int): void {
    this.child = child;
    this.padding = padding;
  }
  def layout(width: int): int {
    return this.child.layout(width - 2 * this.padding) + 2 * this.padding;
  }
  def minWidth(): int { return this.child.minWidth() + 2 * this.padding; }
}

class ColumnNode implements FoNode {
  var children: ArraySeq;
  def init(): void { this.children = new ArraySeq(4); }
  def add(n: FoNode): void { this.children.add(n); }
  def layout(width: int): int {
    var total: int = 0;
    var i: int = 0;
    while (i < this.children.length()) {
      var node: FoNode = this.children.get(i) as FoNode;
      total = total + node.layout(width);
      i = i + 1;
    }
    return total;
  }
  def minWidth(): int {
    var widest: int = 0;
    var i: int = 0;
    while (i < this.children.length()) {
      var node: FoNode = this.children.get(i) as FoNode;
      var w: int = node.minWidth();
      if (w > widest) { widest = w; }
      i = i + 1;
    }
    return widest;
  }
}

object Main {
  static var doc: FoNode;

  def makeSection(depth: int, seed: int): FoNode {
    if (depth == 0) {
      return new TextLeaf(40 + (seed * 17) % 300);
    }
    var col: ColumnNode = new ColumnNode();
    var i: int = 0;
    while (i < 4) {
      col.add(new BoxNode(Main.makeSection(depth - 1, seed * 5 + i), 2 + (i & 1)));
      i = i + 1;
    }
    return col;
  }

  def run(): int {
    if (Main.doc == null) { Main.doc = Main.makeSection(4, 3); }
    var total: int = 0;
    var width: int = 200;
    while (width < 240) {
      total = total + Main.doc.layout(width) + Main.doc.minWidth();
      width = width + 20;
    }
    return total;
  }
}
"""
