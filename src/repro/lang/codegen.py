"""AST → bytecode generation for minij.

Lowers the resolved AST onto :class:`~repro.bytecode.builder.MethodBuilder`:

- ``bool`` erases to the bytecode ``int``;
- ``&&`` / ``||`` become control flow (short-circuit);
- ``while`` loops emit the bottom-tested form (one conditional branch
  per iteration, the backedge carrying the loop profile);
- traits become interfaces (default methods keep their bodies), objects
  become abstract classes of statics;
- every lambda becomes an anonymous ``$LambdaN`` class implementing its
  function trait, with one field per captured local (plus ``$this``
  when the enclosing instance is captured) — the Figure 2 ``$anon``
  lowering. Reference-typed lambda parameters arrive erased as
  ``Object`` and are cast on entry, as on the JVM.
"""

from repro.bytecode.builder import MethodBuilder
from repro.bytecode.klass import ClassDef, FieldDef
from repro.bytecode.method import Method
from repro.errors import ResolveError
from repro.lang import ast


def erase_type(type_name):
    """Map a source type to its bytecode type."""
    if type_name == "bool":
        return "int"
    if type_name.endswith("[]"):
        return erase_type(type_name[:-2]) + "[]"
    return type_name


class CodeGen:
    """Generates a whole program from resolved modules."""

    def __init__(self, table, lambdas, program):
        self.table = table
        self.lambdas = lambdas
        self.program = program

    def run(self):
        for decl in self.table.decls.values():
            self._gen_class(decl)
        for lam in self.lambdas:
            self._gen_lambda_class(lam)
        return self.program

    # ------------------------------------------------------------------
    # Classes
    # ------------------------------------------------------------------

    def _gen_class(self, decl):
        klass = ClassDef(
            decl.name,
            superclass=decl.superclass or "Object",
            interfaces=decl.interfaces,
            is_interface=decl.kind == "trait",
            is_abstract=decl.kind in ("trait", "object")
            or any(m.is_abstract and not m.is_static for m in decl.methods),
        )
        for field in decl.fields:
            klass.add_field(
                FieldDef(field.name, erase_type(field.type), field.is_static)
            )
        for method in decl.methods:
            klass.add_method(self._gen_method(decl, method))
        self.program.add_class(klass)

    def _gen_method(self, decl, method):
        param_types = [erase_type(t) for _n, t in method.params]
        return_type = erase_type(method.return_type)
        if method.is_abstract:
            return Method(
                method.name,
                param_types,
                return_type,
                is_static=method.is_static,
                is_abstract=True,
            )
        builder = MethodBuilder(
            method.name, param_types, return_type, is_static=method.is_static
        )
        builder.force_inline = "inline" in method.annotations
        builder.never_inline = "noinline" in method.annotations
        env = {}
        base = 0 if method.is_static else 1
        for index, (name, _t) in enumerate(method.params):
            env[name] = base + index
        context = _MethodContext(
            self, decl.name, method.is_static, env, builder, in_lambda=None
        )
        context.gen_block(method.body)
        self._ensure_terminated(builder, method)
        return builder.build()

    def _ensure_terminated(self, builder, method):
        """Append the implicit return of void methods (the resolver
        guarantees value-returning methods return on every path; an
        unreachable trailing RET keeps the verifier satisfied when the
        last statement is a loop)."""
        code = builder._code
        if method.return_type == "void":
            builder.ret()
        elif not code or code[-1].op not in ("RET", "RETV", "GOTO"):
            # Unreachable filler after e.g. `while(true)`; RETV needs a
            # value, so emit CONST 0 / NULL accordingly.
            if erase_type(method.return_type) == "int":
                builder.const(0).retv()
            else:
                builder.null().retv()

    # ------------------------------------------------------------------
    # Lambdas
    # ------------------------------------------------------------------

    def _gen_lambda_class(self, lam):
        iface_decl = self.table.decl(lam.interface)
        apply_decl = None
        for m in iface_decl.methods:
            if m.name == "apply":
                apply_decl = m
                break
        if apply_decl is None:
            raise ResolveError(
                "function trait %s lacks apply" % lam.interface,
                lam.line,
                lam.column,
            )
        klass = ClassDef(lam.class_name, interfaces=[lam.interface])
        if lam.captures_this:
            klass.add_field(FieldDef("$this", "Object"))
        for name, type_name in lam.captures:
            klass.add_field(FieldDef(name, erase_type(type_name)))

        param_types = [erase_type(t) for _n, t in apply_decl.params]
        return_type = erase_type(apply_decl.return_type)
        builder = MethodBuilder("apply", param_types, return_type)
        env = {}
        for index, (name, declared) in enumerate(lam.params):
            slot = 1 + index
            env[name] = slot
            iface_param = apply_decl.params[index][1]
            if declared not in ("int", "bool") and erase_type(
                declared
            ) != erase_type(iface_param):
                # Erasure cast on entry, like a JVM bridge method.
                builder.load(slot).checkcast(erase_type(declared)).store(slot)
        context = _MethodContext(
            self,
            self._lambda_owner_class(lam),
            False,
            env,
            builder,
            in_lambda=lam,
        )
        context.gen_block(lam.body)
        if erase_type(lam.return_type) == "void":
            builder.ret()
        elif not builder._code or builder._code[-1].op not in (
            "RET",
            "RETV",
            "GOTO",
        ):
            if erase_type(lam.return_type) == "int":
                builder.const(0).retv()
            else:
                builder.null().retv()
        klass.add_method(builder.build())
        self.program.add_class(klass)

    def _lambda_owner_class(self, lam):
        """The class whose fields/methods the lambda body reaches via the
        captured $this (recorded when the creation site was generated)."""
        return lam._owner_class


class _MethodContext:
    """Per-method code generation state."""

    def __init__(self, codegen, class_name, is_static, env, builder, in_lambda):
        self.codegen = codegen
        self.table = codegen.table
        self.class_name = class_name
        self.is_static = is_static
        self.env = env
        self.b = builder
        self.lam = in_lambda

    # -- this plumbing ------------------------------------------------------

    def _load_this(self):
        """Push the *logical* this (the enclosing instance)."""
        if self.lam is not None:
            self.b.load(0).getfield(self.lam.class_name, "$this")
            owner = self._this_type()
            if owner != "Object":
                self.b.checkcast(owner)
        else:
            self.b.load(0)

    def _this_type(self):
        if self.lam is not None:
            return self.lam._owner_class
        return self.class_name

    # -- statements -----------------------------------------------------------

    def gen_block(self, block):
        for stmt in block.stmts:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt):
        if isinstance(stmt, ast.BlockStmt):
            self.gen_block(stmt)
        elif isinstance(stmt, ast.VarStmt):
            slot = self.b.alloc_local()
            self.env[stmt.name] = slot
            if stmt.init is not None:
                self.gen_expr(stmt.init)
                self.b.store(slot)
            else:
                if erase_type(stmt.type) == "int":
                    self.b.const(0)
                else:
                    self.b.null()
                self.b.store(slot)
        elif isinstance(stmt, ast.AssignStmt):
            self._gen_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.gen_expr(stmt.expr)
            if stmt.expr.type not in ("void",):
                self.b.pop()
        elif isinstance(stmt, ast.IfStmt):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                self.b.ret()
            else:
                self.gen_expr(stmt.value)
                self.b.retv()
        else:
            raise ResolveError("cannot generate %r" % stmt, stmt.line, stmt.column)

    def _gen_if(self, stmt):
        then_label = self.b.new_label()
        end_label = self.b.new_label()
        self.gen_expr(stmt.condition)
        self.b.if_true(then_label)
        if stmt.else_body is not None:
            self.gen_stmt(stmt.else_body)
        self.b.goto(end_label)
        self.b.place(then_label)
        self.gen_stmt(stmt.then_body)
        self.b.place(end_label)

    def _gen_while(self, stmt):
        cond_label = self.b.new_label()
        body_label = self.b.new_label()
        self.b.goto(cond_label)
        self.b.place(body_label)
        self.gen_stmt(stmt.body)
        self.b.place(cond_label)
        self.gen_expr(stmt.condition)
        self.b.if_true(body_label)

    def _gen_assign(self, stmt):
        target = stmt.target
        if isinstance(target, ast.NameExpr):
            if target.binding == "local":
                self.gen_expr(stmt.value)
                self.b.store(self.env[target.name])
            elif target.binding == "field":
                owner, _decl = target.slot
                self._load_this()
                self.gen_expr(stmt.value)
                self.b.putfield(owner, target.name)
            elif target.binding == "static-field":
                owner, _decl = target.slot
                self.gen_expr(stmt.value)
                self.b.putstatic(owner, target.name)
            else:
                raise ResolveError(
                    "cannot assign to %s" % target.binding,
                    stmt.line,
                    stmt.column,
                )
        elif isinstance(target, ast.FieldExpr):
            if target.binding == "static-field":
                self.gen_expr(stmt.value)
                self.b.putstatic(target.owner, target.name)
            else:
                self.gen_expr(target.target)
                self.gen_expr(stmt.value)
                self.b.putfield(target.owner, target.name)
        elif isinstance(target, ast.IndexExpr):
            self.gen_expr(target.target)
            self.gen_expr(target.index)
            self.gen_expr(stmt.value)
            self.b.astore()
        else:
            raise ResolveError("bad assignment target", stmt.line, stmt.column)

    # -- expressions --------------------------------------------------------------

    def gen_expr(self, expr):
        if isinstance(expr, ast.IntLit):
            self.b.const(expr.value)
        elif isinstance(expr, ast.BoolLit):
            self.b.const(1 if expr.value else 0)
        elif isinstance(expr, ast.NullLit):
            self.b.null()
        elif isinstance(expr, ast.ThisExpr):
            self._load_this()
        elif isinstance(expr, ast.NameExpr):
            self._gen_name(expr)
        elif isinstance(expr, ast.FieldExpr):
            self._gen_field(expr)
        elif isinstance(expr, ast.IndexExpr):
            self.gen_expr(expr.target)
            self.gen_expr(expr.index)
            self.b.aload(erase_type(expr.type))
        elif isinstance(expr, ast.CallExpr):
            self._gen_call(expr)
        elif isinstance(expr, ast.NewExpr):
            self._gen_new(expr)
        elif isinstance(expr, ast.NewArrayExpr):
            self.gen_expr(expr.length)
            self.b.newarray(erase_type(expr.elem_type))
        elif isinstance(expr, ast.UnaryExpr):
            self.gen_expr(expr.operand)
            if expr.op == "-":
                self.b.neg()
            else:
                self.b.const(1).xor()
        elif isinstance(expr, ast.BinaryExpr):
            self._gen_binary(expr)
        elif isinstance(expr, ast.IsExpr):
            self.gen_expr(expr.operand)
            self.b.instanceof(erase_type(expr.type_name))
        elif isinstance(expr, ast.AsExpr):
            self.gen_expr(expr.operand)
            self.b.checkcast(erase_type(expr.type_name))
        elif isinstance(expr, ast.LambdaExpr):
            self._gen_lambda_new(expr)
        else:
            raise ResolveError(
                "cannot generate %r" % expr, expr.line, expr.column
            )

    def _gen_name(self, expr):
        if expr.binding == "local":
            self.b.load(self.env[expr.name])
        elif expr.binding == "capture":
            self.b.load(0).getfield(self.lam.class_name, expr.name)
        elif expr.binding == "field":
            owner, _decl = expr.slot
            self._load_this()
            self.b.getfield(owner, expr.name)
        elif expr.binding == "static-field":
            owner, _decl = expr.slot
            self.b.getstatic(owner, expr.name)
        else:
            raise ResolveError(
                "name %s is not a value" % expr.name, expr.line, expr.column
            )

    def _gen_field(self, expr):
        if expr.binding == "arraylen":
            self.gen_expr(expr.target)
            self.b.arraylen()
        elif expr.binding == "static-field":
            self.b.getstatic(expr.owner, expr.name)
        else:
            self.gen_expr(expr.target)
            self.b.getfield(expr.owner, expr.name)

    def _gen_call(self, expr):
        dispatch = expr.dispatch
        if dispatch == "builtin":
            for arg in expr.args:
                self.gen_expr(arg)
            self.b.invokestatic("Builtins", expr.name)
            return
        if dispatch == "static":
            for arg in expr.args:
                self.gen_expr(arg)
            self.b.invokestatic(expr.owner, expr.name)
            return
        if dispatch == "special":
            self._load_this()
            for arg in expr.args:
                self.gen_expr(arg)
            self.b.invokespecial(expr.owner, expr.name)
            return
        # Virtual / interface.
        if expr.target is None:
            self._load_this()
            owner = self._this_type() if self.lam is not None else self.class_name
            owner = expr.owner or owner
        else:
            self.gen_expr(expr.target)
            owner = expr.owner
        for arg in expr.args:
            self.gen_expr(arg)
        if dispatch == "interface":
            self.b.invokeinterface(owner, expr.name)
        else:
            self.b.invokevirtual(owner, expr.name)

    def _gen_new(self, expr):
        self.b.new(expr.class_name)
        if expr.has_ctor:
            self.b.dup()
            for arg in expr.args:
                self.gen_expr(arg)
            self.b.invokespecial(expr.class_name, "init")

    def _gen_binary(self, expr):
        op = expr.op
        if op == "&&":
            right_label = self.b.new_label()
            end_label = self.b.new_label()
            self.gen_expr(expr.left)
            self.b.if_true(right_label)
            self.b.const(0)
            self.b.goto(end_label)
            self.b.place(right_label)
            self.gen_expr(expr.right)
            self.b.place(end_label)
            return
        if op == "||":
            true_label = self.b.new_label()
            end_label = self.b.new_label()
            self.gen_expr(expr.left)
            self.b.if_true(true_label)
            self.gen_expr(expr.right)
            self.b.goto(end_label)
            self.b.place(true_label)
            self.b.const(1)
            self.b.place(end_label)
            return
        self.gen_expr(expr.left)
        self.gen_expr(expr.right)
        is_ref = expr.left.type not in ("int", "bool") or expr.left.type == "null"
        if op == "+":
            self.b.add()
        elif op == "-":
            self.b.sub()
        elif op == "*":
            self.b.mul()
        elif op == "/":
            self.b.div()
        elif op == "%":
            self.b.rem()
        elif op == "<<":
            self.b.shl()
        elif op == ">>":
            self.b.shr()
        elif op == "&":
            self.b.and_()
        elif op == "|":
            self.b.or_()
        elif op == "^":
            self.b.xor()
        elif op == "<":
            self.b.lt()
        elif op == "<=":
            self.b.le()
        elif op == ">":
            self.b.gt()
        elif op == ">=":
            self.b.ge()
        elif op == "==":
            if is_ref:
                self.b.ref_eq()
            else:
                self.b.eq()
        elif op == "!=":
            if is_ref:
                self.b.ref_ne()
            else:
                self.b.ne()
        else:
            raise ResolveError("unknown operator %s" % op, expr.line, expr.column)

    def _gen_lambda_new(self, lam):
        lam._owner_class = self._this_type()
        self.b.new(lam.class_name)
        if lam.captures_this:
            self.b.dup()
            self._load_this()
            self.b.putfield(lam.class_name, "$this")
        for name, _type in lam.captures:
            self.b.dup()
            # The captured variable is a local here (or itself a capture
            # of the enclosing lambda).
            if name in self.env:
                self.b.load(self.env[name])
            elif self.lam is not None and any(
                c[0] == name for c in self.lam.captures
            ):
                self.b.load(0).getfield(self.lam.class_name, name)
            else:
                raise ResolveError("cannot capture %s" % name, lam.line, lam.column)
            self.b.putfield(lam.class_name, name)
