"""scalatest — the Scala testing framework.

scalatest registers test bodies as closures and evaluates fluent
matcher chains. We model a suite of assertion closures (``IntFn0``
thunks) run repeatedly through matcher objects — tiny methods, deep
closure nesting, lots of allocation. The paper notes C2 actually beats
the new inliner by ~10% here and that a *fixed* low threshold is the
best configuration — a workload where restraint wins.
"""

DESCRIPTION = "suites of assertion closures with fluent matchers"
ITERATIONS = 14

SOURCE = """
class Matcher {
  var expected: int;
  def init(expected: int): void { this.expected = expected; }
  def check(actual: int): bool { return actual == this.expected; }
}

class TestCase {
  var body: IntFn0;
  var matcher: Matcher;
  var name: int;
  def init(name: int, body: IntFn0, matcher: Matcher): void {
    this.name = name; this.body = body; this.matcher = matcher;
  }
  def execute(): bool { return this.matcher.check(this.body.apply()); }
}

class SuiteRunner {
  var passed: int;
  var failed: int;
  def init(): void { this.passed = 0; this.failed = 0; }
  def runAll(tests: ArraySeq): void {
    var self: SuiteRunner = this;
    tests.foreach(fun (t: TestCase): void {
      if (t.execute()) { self.passed = self.passed + 1; }
      else { self.failed = self.failed + 1; }
    });
  }
}

object Main {
  def triangle(n: int): int {
    var acc: int = 0;
    var i: int = 1;
    while (i <= n) { acc = acc + i; i = i + 1; }
    return acc;
  }

  def buildSuite(salt: int): ArraySeq {
    var tests: ArraySeq = new ArraySeq(16);
    var i: int = 0;
    while (i < 24) {
      var n: int = 5 + ((i + salt) % 20);
      var expect: int = n * (n + 1) / 2;
      if (i % 9 == 8) { expect = expect + 1; }  // a few failing tests
      tests.add(new TestCase(i, fun (): int => Main.triangle(n), new Matcher(expect)));
      i = i + 1;
    }
    return tests;
  }

  def run(): int {
    var runner: SuiteRunner = new SuiteRunner();
    var round: int = 0;
    while (round < 6) {
      runner.runAll(Main.buildSuite(round));
      round = round + 1;
    }
    return runner.passed * 1000 + runner.failed;
  }
}
"""
