"""Canonicalization tests: each rewrite family plus the counters
feeding deep inlining trials (N_s)."""

from repro.bytecode import MethodBuilder, Op
from repro.ir import build_graph, check_graph
from repro.ir import nodes as n
from repro.ir import stamps as stm
from repro.opts import canonicalize
from tests.execution import compare_tiers
from tests.helpers import fresh_program, shapes_program, single_method_program


def _canon(program, class_name, method_name, **kwargs):
    graph = build_graph(program.lookup_method(class_name, method_name), program)
    stats = canonicalize(graph, program, **kwargs)
    check_graph(graph, program)
    return graph, stats


class TestConstantFolding:
    def test_arithmetic_chain_folds(self):
        def build(b):
            b.const(6).const(7).mul().const(2).add().retv()

        program = single_method_program(build, params=())
        graph, stats = _canon(program, "T", "f")
        assert stats.constant_folds >= 2
        ret = graph.blocks[-1].terminator
        returns = [
            blk.terminator
            for blk in graph.blocks
            if isinstance(blk.terminator, n.ReturnNode)
        ]
        assert returns[0].value().stamp.constant_value() == 44

    def test_division_by_zero_not_folded(self):
        def build(b):
            b.const(1).const(0).div().retv()

        program = single_method_program(build, params=())
        graph, stats = _canon(program, "T", "f")
        divs = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.BinOpNode) and x.op == Op.DIV
        ]
        assert divs  # kept: it must trap at runtime

    def test_compare_folds(self):
        def build(b):
            b.const(3).const(5).lt().retv()

        program = single_method_program(build, params=())
        _, stats = _canon(program, "T", "f")
        assert stats.constant_folds >= 1

    def test_same_node_compare(self):
        def build(b):
            b.load(0).load(0).eq().retv()

        program = single_method_program(build)
        graph, stats = _canon(program, "T", "f")
        returns = [
            blk.terminator
            for blk in graph.blocks
            if isinstance(blk.terminator, n.ReturnNode)
        ]
        assert returns[0].value().stamp.constant_value() == 1


class TestStrengthReduction:
    def _returns_param(self, build):
        program = single_method_program(build)
        graph, stats = _canon(program, "T", "f")
        returns = [
            blk.terminator
            for blk in graph.blocks
            if isinstance(blk.terminator, n.ReturnNode)
        ]
        return returns[0].value(), stats, graph

    def test_add_zero(self):
        value, stats, graph = self._returns_param(
            lambda b: b.load(0).const(0).add().retv()
        )
        assert isinstance(value, n.ParamNode)
        assert stats.strength_reductions == 1

    def test_mul_one_and_zero(self):
        value, stats, _ = self._returns_param(
            lambda b: b.load(0).const(1).mul().retv()
        )
        assert isinstance(value, n.ParamNode)
        value, _, _ = self._returns_param(
            lambda b: b.load(0).const(0).mul().retv()
        )
        assert value.stamp.constant_value() == 0

    def test_mul_power_of_two_becomes_shift(self):
        value, stats, _ = self._returns_param(
            lambda b: b.load(0).const(8).mul().retv()
        )
        assert isinstance(value, n.BinOpNode) and value.op == Op.SHL
        assert value.inputs[1].stamp.constant_value() == 3

    def test_sub_self(self):
        value, _, _ = self._returns_param(lambda b: b.load(0).load(0).sub().retv())
        assert value.stamp.constant_value() == 0

    def test_xor_self_and_identities(self):
        value, _, _ = self._returns_param(lambda b: b.load(0).load(0).xor().retv())
        assert value.stamp.constant_value() == 0
        value, _, _ = self._returns_param(lambda b: b.load(0).const(0).or_().retv())
        assert isinstance(value, n.ParamNode)
        value, _, _ = self._returns_param(lambda b: b.load(0).const(0).shl().retv())
        assert isinstance(value, n.ParamNode)

    def test_double_negation(self):
        value, _, _ = self._returns_param(lambda b: b.load(0).neg().neg().retv())
        assert isinstance(value, n.ParamNode)

    def test_semantics_preserved(self):
        def build(b):
            b.load(0).const(8).mul().load(0).const(0).add().add().retv()

        program = single_method_program(build)
        graph = build_graph(program.lookup_method("T", "f"), program)
        canonicalize(graph, program)
        compare_tiers(program, "T", "f", [13], graph=graph)


class TestBranchPruning:
    def test_constant_condition_prunes(self):
        def build(b):
            dead = b.new_label()
            b.const(0).if_true(dead)
            b.const(1).retv()
            b.place(dead).const(2).retv()

        program = single_method_program(build, params=())
        graph, stats = _canon(program, "T", "f")
        assert stats.branch_prunings == 1
        ifs = [
            blk.terminator
            for blk in graph.blocks
            if isinstance(blk.terminator, n.IfNode)
        ]
        assert not ifs

    def test_pruning_fixes_phis(self):
        def build(b):
            other = b.new_label()
            join = b.new_label()
            b.const(1).if_true(other)
            b.const(10).store(1).goto(join)
            b.place(other).const(20).store(1)
            b.place(join).load(1).retv()

        program = single_method_program(build, params=())
        graph, stats = _canon(program, "T", "f")
        returns = [
            blk.terminator
            for blk in graph.blocks
            if isinstance(blk.terminator, n.ReturnNode)
        ]
        assert returns[0].value().stamp.constant_value() == 20
        compare_tiers(program, "T", "f", [], graph=graph)


class TestTypeSystemFolds:
    def test_instanceof_folds_on_exact_stamp(self):
        program = shapes_program()
        b = MethodBuilder("t", [], "int", is_static=True)
        b.new("Square").instanceof("Shape").retv()
        program.klass("Main").add_method(b.build())
        graph, stats = _canon(program, "Main", "t")
        assert stats.type_check_folds >= 1
        returns = [
            blk.terminator
            for blk in graph.blocks
            if isinstance(blk.terminator, n.ReturnNode)
        ]
        assert returns[0].value().stamp.constant_value() == 1

    def test_instanceof_null_is_false(self):
        program = shapes_program()
        b = MethodBuilder("t", [], "int", is_static=True)
        b.null().instanceof("Shape").retv()
        program.klass("Main").add_method(b.build())
        graph, _ = _canon(program, "Main", "t")
        returns = [
            blk.terminator
            for blk in graph.blocks
            if isinstance(blk.terminator, n.ReturnNode)
        ]
        assert returns[0].value().stamp.constant_value() == 0

    def test_instanceof_nullable_match_folds_to_null_test(self):
        # The operand's type provably matches but the value may be
        # null: the subtype test must still fold — to a null test
        # (null→0, else 1) — instead of being given up on.
        program = shapes_program()
        b = MethodBuilder("t", ["int"], "int", is_static=True)
        other = b.new_label()
        join = b.new_label()
        slot = b.alloc_local()
        b.load(0).if_true(other)
        b.null().store(slot).goto(join)
        b.place(other).new("Square").store(slot)
        b.place(join).load(slot).instanceof("Square").retv()
        program.klass("Main").add_method(b.build())
        graph, stats = _canon(program, "Main", "t")
        assert stats.type_check_folds >= 1
        checks = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.InstanceOfNode)
        ]
        assert not checks
        tests = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.CompareNode) and x.op == Op.REF_NE
        ]
        assert tests
        assert compare_tiers(program, "Main", "t", [0]) == 0
        assert compare_tiers(program, "Main", "t", [1]) == 1

    def test_checkcast_fold_keeps_narrowed_stamp(self):
        # A provably-passing cast folds away, but facts the cast node
        # carries beyond the input's current stamp (here: exactness
        # learned while the input was known more precisely) must
        # survive as a Pi — the dominated devirtualization below
        # depends on them.
        program = shapes_program()
        sub = program.define_class("FancySquare", superclass="Square")
        b = MethodBuilder("area", [], "int")
        b.const(99).retv()
        sub.add_method(b.build())
        b = MethodBuilder("t", ["Shape"], "int", is_static=True)
        b.load(0).checkcast("Square")
        b.invokeinterface("Shape", "area").retv()
        program.klass("Main").add_method(b.build())
        graph = build_graph(program.lookup_method("Main", "t"), program)
        (cast,) = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.CheckCastNode)
        ]
        # Stale-but-sound input stamp: the cast node accumulated an
        # exact non-null stamp from an earlier, more precise stamp of
        # the same value; the value itself now reads wider.
        cast.stamp = stm.ref_stamp("Square", exact=True, non_null=True)
        graph.params[0].stamp = stm.ref_stamp("Square")
        stats = canonicalize(graph, program)
        check_graph(graph, program)
        casts = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.CheckCastNode)
        ]
        assert not casts
        assert stats.type_check_folds >= 1
        pis = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.PiNode)
        ]
        assert pis and pis[0].stamp.exact and pis[0].stamp.non_null
        # Without the Pi the receiver reads as inexact Square, CHA
        # sees {Square, FancySquare} and the call stays virtual.
        (invoke,) = graph.invokes()
        assert invoke.kind == "direct"
        assert invoke.target.qualified_name == "Square.area"

    def test_checkcast_elided_when_proven(self):
        program = shapes_program()
        b = MethodBuilder("t", [], "int", is_static=True)
        b.new("Square").checkcast("Shape").instanceof("Square").retv()
        program.klass("Main").add_method(b.build())
        graph, stats = _canon(program, "Main", "t")
        casts = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.CheckCastNode)
        ]
        assert not casts


class TestDevirtualization:
    def test_exact_stamp_devirtualizes(self):
        program = shapes_program()
        b = MethodBuilder("t", [], "int", is_static=True)
        b.new("Square").dup().const(4).putfield("Square", "side")
        slot = b.alloc_local()
        b.store(slot)
        b.load(slot).invokeinterface("Shape", "area").retv()
        program.klass("Main").add_method(b.build())
        graph, stats = _canon(program, "Main", "t")
        assert stats.devirtualizations == 1
        (invoke,) = graph.invokes()
        assert invoke.kind == "direct"
        assert invoke.target.qualified_name == "Square.area"

    def test_cha_devirtualizes_single_implementor(self):
        program = fresh_program()
        from repro.bytecode.method import Method

        iface = program.define_class("I", is_interface=True)
        iface.add_method(Method("m", [], "int", is_abstract=True))
        only = program.define_class("Only", interfaces=["I"])
        b = MethodBuilder("m", [], "int")
        b.const(5).retv()
        only.add_method(b.build())
        holder = program.define_class("H", is_abstract=True)
        b = MethodBuilder("f", ["I"], "int", is_static=True)
        b.load(0).invokeinterface("I", "m").retv()
        holder.add_method(b.build())
        graph, stats = _canon(program, "H", "f")
        assert stats.devirtualizations == 1

    def test_two_implementors_stay_virtual(self):
        program = shapes_program()
        graph, stats = _canon(program, "Main", "total")
        (invoke,) = graph.invokes()
        assert invoke.kind == "interface"
        assert stats.devirtualizations == 0

    def test_devirtualization_can_be_disabled(self):
        program = shapes_program()
        graph = build_graph(program.lookup_method("Main", "total"), program)
        graph.params[0].stamp = stm.ref_stamp("Square", exact=True, non_null=True)
        stats = canonicalize(graph, program, devirtualize=False)
        (invoke,) = graph.invokes()
        assert invoke.kind == "interface"


class TestCounters:
    def test_simple_counts_exclude_devirt(self):
        from repro.opts import CanonStats

        stats = CanonStats()
        stats.constant_folds = 2
        stats.strength_reductions = 1
        stats.branch_prunings = 1
        stats.type_check_folds = 3
        stats.devirtualizations = 5
        assert stats.simple() == 7
        assert stats.total() == 12

    def test_merge(self):
        from repro.opts import CanonStats

        a, b = CanonStats(), CanonStats()
        a.constant_folds = 1
        b.constant_folds = 2
        b.devirtualizations = 1
        a.merge(b)
        assert a.constant_folds == 3 and a.devirtualizations == 1
