"""The Python-codegen top tier against its machine-model oracle.

Every test here is a differential: the machine backend is the trusted
cycle-accounted executor, and the generated Python closures must agree
with it bit for bit — values, per-iteration cycles, printed output,
trap kinds, deopt counts, and OSR entries. Host wall-clock is the only
thing allowed to differ.
"""

import pytest

from repro.backend import pycodegen
from repro.backend.pycodegen import PyCodegenBailout, _MASK, _SIGN
from repro.baselines import tuned_inliner
from repro.errors import TrapError
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from repro.obs import Observability
from repro.runtime.int64 import wrap64
from tests.helpers import (
    SHAPES_RESULT,
    shapes_program,
    single_method_program,
)
from tests.test_deopt import flip_program


def _engine(program, backend, **jit):
    jit.setdefault("hot_threshold", 3)
    config = JitConfig(backend=backend, **jit)
    return Engine(program, config, tuned_inliner(0.1))


def _observe(call):
    try:
        return ("value", call())
    except TrapError as trap:
        return ("trap", trap.kind)


def _run_both(program, entry, arg_fn, iterations, **jit):
    """One run per backend; returns the two (outcomes, cycles, engine)."""
    results = []
    for backend in ("machine", "py"):
        engine = _engine(program, backend, **jit)
        outcomes, cycles = [], []
        for i in range(iterations):
            args = arg_fn(i)
            outcomes.append(_observe(
                lambda: engine.run_iteration(entry[0], entry[1], args).value
            ))
            cycles.append(
                engine.compiled_cycles + engine.icache_cycles
            )
        results.append((outcomes, cycles, engine))
    return results


def assert_identical(machine, py):
    m_out, m_cyc, m_eng = machine
    p_out, p_cyc, p_eng = py
    assert m_out == p_out
    assert m_cyc == p_cyc
    assert list(m_eng.vm.output) == list(p_eng.vm.output)
    assert m_eng.deopt_count == p_eng.deopt_count
    assert m_eng.osr_entry_count == p_eng.osr_entry_count
    assert p_eng.py_exec_count > 0  # the py tier actually ran


def test_arithmetic_loop_differential():
    # Straight-line + loop arithmetic covering wrap-sensitive ops.
    def build(b):
        acc = b.alloc_local()
        i = b.alloc_local()
        b.const(0x7FFFFFFFFFFF0123).store(acc)
        b.const(0).store(i)
        loop = b.new_label()
        done = b.new_label()
        b.place(loop).load(i).const(50).ge().if_true(done)
        b.load(acc).const(0x1234567).mul().load(0).add().store(acc)
        b.load(acc).const(13).rem().load(acc).const(7).div().add()
        b.load(acc).xor().store(acc)
        b.load(acc).const(3).shl().load(acc).const(5).shr().or_()
        b.store(acc)
        b.load(i).const(1).add().store(i).goto(loop)
        b.place(done).load(acc).retv()

    program = single_method_program(build)
    machine, py = _run_both(
        program, ("T", "f"), lambda i: [i * 977 - 3], 8
    )
    assert_identical(machine, py)


def test_deopt_differential():
    # The receiver-flip driver: speculation compiles in a guard, the
    # flipped receiver refutes it — the py tier must raise the same
    # DeoptSignal with the same frames and leave the same deopt count.
    machine, py = _run_both(
        flip_program(), ("Main", "drive"),
        lambda i: [1 if i >= 10 else 0], 16,
        hot_threshold=4, speculate=True,
    )
    assert_identical(machine, py)
    assert py[2].deopt_count == 1


def test_osr_differential():
    # Unreachable dispatch threshold: the only route into compiled code
    # is an OSR transfer at the loop backedge.
    machine, py = _run_both(
        shapes_program(), ("Main", "run"), lambda i: [], 3,
        hot_threshold=10**9, osr=True, osr_threshold=30,
    )
    assert_identical(machine, py)
    assert py[2].osr_entry_count >= 1
    assert machine[0][0] == ("value", SHAPES_RESULT)


def test_trap_differential():
    # Division by zero and array bounds, driven through the compiled
    # tier: same trap kinds, same surviving iterations.
    def build(b):
        arr = b.alloc_local()
        b.const(4).newarray("int").store(arr)
        b.load(arr).load(0).const(100).load(0).div().astore()
        b.load(arr).load(0).aload().retv()

    program = single_method_program(build)
    machine, py = _run_both(
        program, ("T", "f"), lambda i: [i % 6 - 1], 12
    )
    assert_identical(machine, py)
    kinds = {kind for kind, _ in machine[0]}
    assert kinds == {"value", "trap"}


def test_env_pin_forces_machine(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "machine")
    engine = _engine(shapes_program(), "py")
    for _ in range(3):
        engine.run_iteration("Main", "run")
    assert engine.backend == "machine"
    assert engine.py_exec_count == 0


def test_env_pin_enables_py(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "py")
    engine = Engine(
        shapes_program(), JitConfig(hot_threshold=3), tuned_inliner(0.1)
    )
    for _ in range(3):
        engine.run_iteration("Main", "run")
    assert engine.backend == "py"
    assert engine.py_exec_count > 0


def test_py_source_attached():
    engine = _engine(shapes_program(), "py")
    for _ in range(3):
        engine.run_iteration("Main", "run")
    codes = [
        engine.code_cache.get(m)
        for m in engine.code_cache.installed_methods()
    ]
    assert codes
    for code in codes:
        assert code.py_factory is not None
        assert "def _run(args):" in code.py_source


def test_bailout_falls_back_to_machine(monkeypatch):
    # Force the node-count bailout: the engine must keep answering
    # through machine code — slower, never wrong — and count the reason.
    monkeypatch.setattr(pycodegen, "MAX_NODES", 0)
    obs = Observability()
    engine = Engine(
        shapes_program(),
        JitConfig(hot_threshold=3, backend="py"),
        tuned_inliner(0.1),
        obs=obs,
    )
    values = [engine.run_iteration("Main", "run").value for _ in range(3)]
    assert values == [SHAPES_RESULT] * 3
    assert engine.compilation_count > 0
    assert engine.py_exec_count == 0
    registry = obs.metrics.snapshot()
    assert registry["backend.py.bailouts"]["value"] > 0
    assert registry["backend.py.bailouts.graph-too-large"]["value"] > 0
    assert "backend.py.compiles" not in registry


def test_compile_metrics_and_span_backend():
    obs = Observability()
    engine = Engine(
        shapes_program(),
        JitConfig(hot_threshold=3, backend="py"),
        tuned_inliner(0.1),
        obs=obs,
    )
    for _ in range(3):
        engine.run_iteration("Main", "run")
    registry = obs.metrics.snapshot()
    assert registry["backend.py.compiles"]["value"] > 0
    ends = [
        r for r in obs.events.of_name("compile") if r["type"] == "end"
    ]
    assert ends
    assert all(r["attrs"].get("backend") == "py" for r in ends)
    assert obs.events.spans_named("pycodegen")


@pytest.mark.parametrize("value", [
    0, 1, -1, 2**63 - 1, -(2**63), 2**63, -(2**63) - 1, 2**64,
    2**64 + 17, -(2**64) - 17, 123456789123456789,
])
def test_inline_wrap_formula_matches_wrap64(value):
    # The codegen inlines the two's-complement wrap instead of calling
    # wrap64(); the formula must agree on every edge case.
    assert (value + _SIGN & _MASK) - _SIGN == wrap64(value)


def test_generate_bails_on_oversized_graph(monkeypatch):
    monkeypatch.setattr(pycodegen, "MAX_NODES", 1)
    from repro.ir.builder import build_graph
    from repro.ir.frequency import annotate_frequencies

    program = shapes_program()
    method = program.lookup_method("Main", "run")
    graph = build_graph(method, program, None)
    annotate_frequencies(graph)
    with pytest.raises(PyCodegenBailout) as info:
        pycodegen.generate(graph)
    assert info.value.reason == "graph-too-large"


def test_stats_report_shows_backend_column():
    from repro.obs.report import build_report, render_report

    obs = Observability()
    engine = Engine(
        shapes_program(),
        JitConfig(hot_threshold=3, backend="py"),
        tuned_inliner(0.1),
        obs=obs,
    )
    for _ in range(3):
        engine.run_iteration("Main", "run")
    report = build_report(obs.events.records)
    assert report["compiles"]
    assert all(e["backend"] == "py" for e in report["compiles"])
    assert all(e["bailout"] is None for e in report["compiles"])
    assert report["backend_bailouts"] == []
    # pycodegen wall time lands in both per-compile and total phases.
    assert report["phase_totals"]["pycodegen"] > 0.0
    rendered = render_report(report)
    assert "backend" in rendered
    assert "pycodegen=" in rendered
    assert "py-backend bailouts" not in rendered


def test_stats_report_shows_bailouts(monkeypatch):
    from repro.obs.report import build_report, render_report

    monkeypatch.setattr(pycodegen, "MAX_NODES", 0)
    obs = Observability()
    engine = Engine(
        shapes_program(),
        JitConfig(hot_threshold=3, backend="py"),
        tuned_inliner(0.1),
        obs=obs,
    )
    for _ in range(3):
        engine.run_iteration("Main", "run")
    report = build_report(obs.events.records)
    assert report["compiles"]
    assert all(e["backend"] == "machine" for e in report["compiles"])
    assert all(
        e["bailout"] == "graph-too-large" for e in report["compiles"]
    )
    assert report["backend_bailouts"]
    assert all(
        b["reason"] == "graph-too-large"
        for b in report["backend_bailouts"]
    )
    rendered = render_report(report)
    assert "machine!" in rendered
    assert "py-backend bailouts" in rendered
    assert "graph-too-large" in rendered
