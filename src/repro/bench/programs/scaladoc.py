"""scaladoc — documentation generation.

scaladoc runs the compiler front end and then renders model entities.
We model the rendering half: an entity tree (packages, classes,
members) traversed through a generic ``Seq.fold`` with lambdas that
accumulate rendered sizes, plus a lookup index. Heavy use of generic
combinators over boxed entities — the shape where deep trials matter
(paper: ≈1.45× over C2, ≈7% from deep trials).
"""

DESCRIPTION = "entity-tree rendering through generic fold/lambda chains"
ITERATIONS = 14

SOURCE = """
class Entity {
  var kind: int;        // 0 package, 1 class, 2 member
  var name: int;
  var members: ArraySeq;
  var comment: int;
  def init(kind: int, name: int, comment: int): void {
    this.kind = kind; this.name = name; this.comment = comment;
    this.members = new ArraySeq(2);
  }
}

object Main {
  static var root: Entity;

  def build(depth: int, seed: int): Entity {
    var kind: int = 2;
    if (depth >= 2) { kind = 0; }
    if (depth == 1) { kind = 1; }
    var e: Entity = new Entity(kind, seed & 255, 10 + seed % 90);
    if (depth > 0) {
      var i: int = 0;
      while (i < 4) {
        e.members.add(Main.build(depth - 1, seed * 7 + i));
        i = i + 1;
      }
    }
    return e;
  }

  def renderSize(e: Entity): int {
    var header: int = 8 + (e.name & 15);
    var commentSize: int = e.comment;
    if (e.kind == 2) { return header + commentSize; }
    var self: int = header + commentSize;
    var childSum: Box = new Box(0);
    e.members.foreach(fun (m: Entity): void {
      childSum.value = childSum.value + Main.renderSize(m);
    });
    return self + childSum.value;
  }

  def indexNames(e: Entity, index: IntIntMap): void {
    index.put(e.name, index.get(e.name, 0) + 1);
    e.members.foreach(fun (m: Entity): void { Main.indexNames(m, index); });
  }

  def run(): int {
    if (Main.root == null) { Main.root = Main.build(4, 3); }
    var total: int = 0;
    var pass: int = 0;
    while (pass < 2) {
      total = total + Main.renderSize(Main.root);
      pass = pass + 1;
    }
    var index: IntIntMap = new IntIntMap(64);
    Main.indexNames(Main.root, index);
    return total + index.size;
  }
}
"""
