"""Cheap wall-clock phase timers (the third half of observability).

The event log's spans already carry a ``dur`` attribute, but turning a
stream of events into "where did the wall time go" requires a full scan.
:class:`PhaseTimers` is the cheap aggregate view: named accumulators of
``(seconds, count)`` that cost two ``perf_counter`` calls per timed
region and nothing to read. The ``stats`` CLI renders the snapshot as a
wall-time attribution table, and ``repro.tools.perf`` folds it into
``BENCH_wall.json``.

Wall-clock numbers are *host telemetry only*: nothing in the
deterministic cycle model reads them (same contract as event-span
durations).

Usage::

    with obs.timers.span("compile.inline"):
        ...
    obs.timers.snapshot()
    # {"compile.inline": {"seconds": 0.012, "count": 3}}

The inert :data:`NULL_TIMERS` (default on :data:`~repro.obs.NULL_OBS`)
reuses one no-op span object, so un-instrumented code pays a dict-free
attribute access and an empty ``with`` block.
"""

import time


class PhaseAccumulator:
    """Total seconds and entry count for one named phase."""

    __slots__ = ("name", "seconds", "count")

    def __init__(self, name):
        self.name = name
        self.seconds = 0.0
        self.count = 0

    def add(self, seconds):
        self.seconds += seconds
        self.count += 1

    def snapshot(self):
        return {"seconds": self.seconds, "count": self.count}

    def __repr__(self):
        return "<Phase %s %.6fs/%d>" % (self.name, self.seconds, self.count)


class _PhaseSpan:
    """Context manager adding its elapsed wall time to an accumulator."""

    __slots__ = ("_acc", "_t0")

    def __init__(self, acc):
        self._acc = acc
        self._t0 = 0.0

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._acc.add(time.perf_counter() - self._t0)
        return False


class PhaseTimers:
    """A registry of named wall-clock phase accumulators."""

    __slots__ = ("_phases",)

    enabled = True

    def __init__(self):
        self._phases = {}

    def phase(self, name):
        """Get or create the accumulator for *name*."""
        acc = self._phases.get(name)
        if acc is None:
            acc = self._phases[name] = PhaseAccumulator(name)
        return acc

    def span(self, name):
        """A ``with``-able region accumulating into phase *name*."""
        return _PhaseSpan(self.phase(name))

    def seconds(self, name):
        acc = self._phases.get(name)
        return acc.seconds if acc is not None else 0.0

    def snapshot(self):
        """``{name: {"seconds": s, "count": n}}``, sorted by name."""
        return {
            name: acc.snapshot()
            for name, acc in sorted(self._phases.items())
        }

    def __len__(self):
        return len(self._phases)


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _NullAccumulator:
    __slots__ = ()
    name = ""
    seconds = 0.0
    count = 0

    def add(self, seconds):
        pass

    def snapshot(self):
        return {"seconds": 0.0, "count": 0}


_NULL_ACC = _NullAccumulator()


class NullPhaseTimers:
    """Inert timers: every span is the same no-op object."""

    __slots__ = ()

    enabled = False

    def phase(self, name):
        return _NULL_ACC

    def span(self, name):
        return _NULL_SPAN

    def seconds(self, name):
        return 0.0

    def snapshot(self):
        return {}

    def __len__(self):
        return 0


NULL_TIMERS = NullPhaseTimers()
