"""The JIT compiler driver: front end → inliner → optimizer → backend.

The inlining policy is pluggable: anything with a
``run(graph, context) -> InlineReport`` method works. The paper's
algorithm lives in :mod:`repro.core`; the comparison baselines in
:mod:`repro.baselines`. ``context`` is a :class:`CompileContext` giving
the policy exactly what an online inliner is allowed to see: the program
(for resolution), profiles, graph building for callees, and the
optimizer (for inlining trials).
"""

from repro.backend.lowering import lower_graph
from repro.errors import CompileError
from repro.ir.builder import build_graph
from repro.ir.frequency import annotate_frequencies
from repro.opts.pipeline import OptimizationPipeline


class CompileContext:
    """Everything an inlining policy may consult during a compilation."""

    def __init__(self, program, profiles, pipeline, cost_model):
        self.program = program
        self.profiles = profiles
        self.pipeline = pipeline
        self.cost_model = cost_model

    def build_callee_graph(self, method, caller=None):
        """A fresh profiled graph for *method* (one per call-tree node,
        so each copy can be specialized independently).

        When the profile store runs in context-sensitive mode and a
        *caller* is given, branch probabilities and receiver histograms
        come from the profile observed *from that caller* (falling back
        to the aggregate) — the §VI extension the paper left to future
        work.
        """
        profiles = self.profiles
        if (
            profiles is not None
            and caller is not None
            and getattr(profiles, "context_sensitive", False)
        ):
            profiles = profiles.view_for_caller(caller)
        graph = build_graph(method, self.program, profiles)
        annotate_frequencies(graph)
        return graph

    def can_build(self, method):
        return not (method.is_abstract or method.is_native)


class CompilationRecord:
    """Outcome of one compilation, kept for evaluation reporting."""

    __slots__ = (
        "method",
        "code",
        "graph_nodes",
        "inline_report",
        "compile_cycles",
    )

    def __init__(self, method, code, graph_nodes, inline_report, compile_cycles):
        self.method = method
        self.code = code
        self.graph_nodes = graph_nodes
        self.inline_report = inline_report
        self.compile_cycles = compile_cycles


class JitCompiler:
    """Compiles single methods with a configurable inlining policy."""

    def __init__(self, program, profiles, config, inliner=None):
        self.program = program
        self.profiles = profiles
        self.config = config
        self.inliner = inliner
        self.pipeline = OptimizationPipeline(program, config.optimizer)
        self.context = CompileContext(
            program, profiles, self.pipeline, config.cost_model
        )
        self.records = []

    def compile(self, method):
        """Compile *method*; returns a :class:`CompilationRecord`."""
        if method.is_abstract or method.is_native:
            raise CompileError("cannot compile %s" % method.qualified_name)
        graph = build_graph(method, self.program, self.profiles)
        annotate_frequencies(graph)
        self.pipeline.run(graph, peel=False, rwe=False)
        inline_report = None
        if self.inliner is not None:
            inline_report = self.inliner.run(graph, self.context)
            annotate_frequencies(graph)
        self.pipeline.run(graph)
        work_units = graph.node_count()
        code = lower_graph(graph, self.config.cost_model)
        compile_cycles = self.config.cost_model.compile_cost(
            work_units, passes=self.config.optimizer.max_iterations
        )
        if inline_report is not None:
            compile_cycles += self.config.cost_model.compile_cost(
                inline_report.explored_nodes
            )
        record = CompilationRecord(
            method, code, work_units, inline_report, compile_cycles
        )
        self.records.append(record)
        return record
