"""minij front-end tests: lexer, parser, resolver diagnostics."""

import pytest

from repro.errors import LexError, ParseError, ResolveError
from repro.lang import compile_source
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_module
from repro.lang import ast


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("class Foo { var x: int; } // comment")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "class", "ident", "{", "var", "ident", ":", "int", ";", "}", "<eof>",
        ]

    def test_numbers_and_operators(self):
        tokens = tokenize("1 + 23 << 4 <= 5 == 6 && x")
        assert [t.value for t in tokens[:1]] == [1]
        kinds = [t.kind for t in tokens]
        assert "<<" in kinds and "<=" in kinds and "&&" in kinds

    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3 and tokens[2].column == 3

    def test_block_comments(self):
        tokens = tokenize("a /* skip \n all this */ b")
        assert [t.kind for t in tokens] == ["ident", "ident", "<eof>"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a ~ b")


class TestParser:
    def test_precedence(self):
        module = parse_module(
            "object M { def f(): int { return 1 + 2 * 3; } }"
        )
        ret = module.decls[0].methods[0].body.stmts[0]
        assert isinstance(ret.value, ast.BinaryExpr)
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_unary_and_postfix(self):
        module = parse_module(
            "object M { def f(a: int[]): int { return -a[0] + a.length; } }"
        )
        ret = module.decls[0].methods[0].body.stmts[0]
        assert isinstance(ret.value.left, ast.UnaryExpr)
        assert isinstance(ret.value.right, ast.FieldExpr)

    def test_is_as_binding(self):
        module = parse_module(
            "object M { def f(x: Object): bool { return x is Object; } }"
        )
        ret = module.decls[0].methods[0].body.stmts[0]
        assert isinstance(ret.value, ast.IsExpr)

    def test_trait_and_annotations(self):
        module = parse_module(
            """
            trait T { def a(): int; @inline def b(): int { return 1; } }
            """
        )
        decl = module.decls[0]
        assert decl.kind == "trait"
        assert decl.methods[0].is_abstract
        assert decl.methods[1].annotations == ["inline"]

    def test_lambda_forms(self):
        module = parse_module(
            """
            object M {
              def f(): int {
                var g: IntFn1 = fun (x: int): int => x + 1;
                var h: IntAction = fun (x: int): void { print(x); };
                return 0;
              }
            }
            """
        )
        stmts = module.decls[0].methods[0].body.stmts
        assert isinstance(stmts[0].init, ast.LambdaExpr)
        assert isinstance(stmts[1].init, ast.LambdaExpr)

    @pytest.mark.parametrize(
        "source",
        [
            "object M { def f(): int { return 1 }",  # missing semicolon
            "object M { def f() int { return 1; } }",  # missing colon
            "class { }",  # missing name
            "object M { var x: int }",  # missing semicolon after field
            "object M { def f(): int { 1 = x; } }",  # bad assign target
        ],
    )
    def test_rejections(self, source):
        with pytest.raises(ParseError):
            parse_module(source)


class TestResolverDiagnostics:
    @pytest.mark.parametrize(
        "body, message_bit",
        [
            ("return y;", "unknown name"),
            ("var x: Nope = null; return 0;", "unknown type"),
            ("var x: int = null; return 0;", "cannot assign"),
            ("if (1) { } return 0;", "condition must be bool"),
            ("return;", "missing return value"),
            ("var b: bool = 1 < true; return 0;", "needs int"),
            ("this.x = 1; return 0;", "this in a static method"),
        ],
    )
    def test_method_body_errors(self, body, message_bit):
        source = "object M { def f(): int { %s } }" % body
        with pytest.raises(ResolveError) as excinfo:
            compile_source(source)
        assert message_bit in str(excinfo.value)

    def test_missing_return_path(self):
        source = """
        object M { def f(c: bool): int { if (c) { return 1; } } }
        """
        with pytest.raises(ResolveError):
            compile_source(source)

    def test_bad_override_signature(self):
        source = """
        class A { def f(): int { return 1; } }
        class B extends A { def f(): bool { return true; } }
        """
        with pytest.raises(ResolveError):
            compile_source(source)

    def test_class_cannot_extend_trait(self):
        source = """
        trait T { def f(): int; }
        class C extends T { def f(): int { return 1; } }
        """
        with pytest.raises(ResolveError):
            compile_source(source)

    def test_inheritance_cycle(self):
        source = """
        class A extends B { }
        class B extends A { }
        """
        with pytest.raises(ResolveError):
            compile_source(source)

    def test_cannot_instantiate_trait(self):
        source = """
        trait T { def f(): int; }
        object M { def g(): int { var t: T = new T; return 0; } }
        """
        with pytest.raises(ResolveError):
            compile_source(source)

    def test_arity_mismatch(self):
        source = """
        object M {
          def f(a: int, b: int): int { return a + b; }
          def g(): int { return M.f(1); }
        }
        """
        with pytest.raises(ResolveError):
            compile_source(source)

    def test_assignment_to_capture_rejected(self):
        source = """
        object M {
          def g(): int {
            var x: int = 0;
            var f: IntFn1 = fun (y: int): int { x = y; return 0; };
            return x;
          }
        }
        """
        with pytest.raises(ResolveError) as excinfo:
            compile_source(source)
        assert "captured" in str(excinfo.value)

    def test_duplicate_class(self):
        with pytest.raises(ResolveError):
            compile_source("class A { } class A { }")
