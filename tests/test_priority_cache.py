"""The expansion-phase priority cache must be invisible in results.

``PriorityCache`` memoizes subtree aggregates (s_irn, s_b, n_c,
ir_size) and priorities between call-tree mutations. Its contract is
bit-identical inlining decisions versus the uncached module functions
(``REPRO_PRIORITY_CACHE=off``), checked here end-to-end through the
engine's cycle model and directly against the module functions on a
live call tree.
"""

import repro.core.priorities as priorities_mod
from repro.baselines import tuned_inliner
from repro.core.priorities import (
    NullPriorityCache,
    PriorityCache,
    make_priority_cache,
)
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from tests.helpers import shapes_program


def _run(program, cache_enabled, iterations=8):
    saved = priorities_mod.CACHE_ENABLED
    priorities_mod.CACHE_ENABLED = cache_enabled
    try:
        engine = Engine(
            program,
            JitConfig(hot_threshold=5),
            inliner=tuned_inliner(0.1),
            seed=0x5EED,
        )
        curve = []
        value = None
        for _ in range(iterations):
            result = engine.run_iteration("Main", "run")
            curve.append(result.total_cycles)
            value = result.value
        return value, curve, engine
    finally:
        priorities_mod.CACHE_ENABLED = saved


def test_cycle_model_identical_cache_on_off():
    program = shapes_program()
    value_off, curve_off, engine_off = _run(program, cache_enabled=False)
    value_on, curve_on, engine_on = _run(program, cache_enabled=True)
    assert value_on == value_off
    assert curve_on == curve_off
    assert engine_on.compilation_count == engine_off.compilation_count
    assert (
        engine_on.code_cache.total_size == engine_off.code_cache.total_size
    )


def test_factory_honors_toggle():
    from repro.core.params import InlinerParams

    params = InlinerParams()
    saved = priorities_mod.CACHE_ENABLED
    try:
        priorities_mod.CACHE_ENABLED = True
        assert isinstance(make_priority_cache(params), PriorityCache)
        priorities_mod.CACHE_ENABLED = False
        assert isinstance(make_priority_cache(params), NullPriorityCache)
    finally:
        priorities_mod.CACHE_ENABLED = saved


def test_cached_values_match_module_functions():
    # Build a real call tree (warm profiles, one expansion round so it
    # has expanded, cutoff, and generic nodes), then compare every
    # cached value against the uncached module functions.
    from repro.core.calltree import make_root
    from repro.core.expansion import ExpansionPhase
    from repro.core.inliner import InlineReport
    from repro.core.params import InlinerParams
    from repro.core.trials import discover_children

    program = shapes_program()
    _, _, engine = _run(program, cache_enabled=True)
    context = engine.compiler.context
    method = program.lookup_method("Main", "run")
    graph = context.build_callee_graph(method)
    root = make_root(graph)
    params = InlinerParams()
    discover_children(root, context, params)
    ExpansionPhase(params).run(root, context, InlineReport())

    cache = PriorityCache(params)
    nodes = list(root.subtree())
    assert len(nodes) > 1
    for node in nodes:
        assert cache.ir_size(node) == node.ir_size()
        assert cache.s_irn(node) == node.s_irn()
        assert cache.priority(node) == priorities_mod.priority(node, params)
        assert cache.intrinsic_priority(node) == (
            priorities_mod.intrinsic_priority(node, params)
        )
    # A second read hits the memo and returns the same values.
    for node in nodes:
        assert cache.priority(node) == priorities_mod.priority(node, params)
