"""Noise-aware comparison of two ``repro.tools.perf`` result files.

Gates performance regressions in CI: compares a freshly measured
``BENCH_wall.json`` against the committed reference and exits nonzero
when a workload's *speedup ratio* dropped by more than the tolerance
(or its semantics check failed). Ratios — not absolute seconds — are
compared, because absolute wall times vary wildly across hosts while
the classic-vs-fast speedup on the same host is far more stable.

Workloads are matched by ``(workload, benchmark, clock)``. A workload
present only in the reference (e.g. ``scaladoc``, which ``--quick``
skips) is reported as skipped unless ``--require-all`` is given. A
workload present only in the *candidate* has no reference ratio to
regress against but is still gated on its semantics check and the
absolute ``--min-speedup`` floor — new fast paths don't get a free
pass just because the committed reference predates them. For matched
workloads the floor binds only when the reference itself meets it:
a workload committed below the floor (serve-mixed records async
overhead, not a speedup) is gated by the ratio comparison alone.

Examples::

    python -m repro.tools.perf --quick -o BENCH_new.json
    python -m repro.tools.perfdiff BENCH_wall.json BENCH_new.json
    python -m repro.tools.perfdiff base.json new.json --max-regression 0.2
"""

import argparse
import json

#: Default fractional speedup drop tolerated before failing. CI quick
#: runs use few repeats on noisy shared runners, so the default is
#: deliberately generous; tighten it for full local runs.
DEFAULT_MAX_REGRESSION = 0.35

#: Default absolute floor: the "fast" configuration must stay at least
#: this many times faster than its baseline.
DEFAULT_MIN_SPEEDUP = 1.0


def _key(entry):
    return (entry["workload"], entry["benchmark"], entry["clock"])


def _index(results):
    return {_key(entry): entry for entry in results["workloads"]}


def compare(base, new, max_regression=DEFAULT_MAX_REGRESSION,
            min_speedup=DEFAULT_MIN_SPEEDUP, require_all=False):
    """Compare two perf result dicts; returns (failures, lines).

    *failures* is a list of human-readable failure strings (empty when
    the gate passes) and *lines* the full per-workload report.
    """
    base_index = _index(base)
    new_index = _index(new)
    failures = []
    lines = [
        "%-16s %-12s %-14s %s"
        % ("workload", "benchmark", "clock", "speedup (base -> new)")
    ]
    for key in sorted(base_index):
        entry = base_index.get(key)
        fresh = new_index.get(key)
        label = "%-16s %-12s %-14s" % key
        if fresh is None:
            if require_all:
                failures.append("%s/%s: missing from new results" % key[:2])
                lines.append("%s missing (FAIL)" % label)
            else:
                lines.append("%s skipped (not in new results)" % label)
            continue
        base_speedup = float(entry["speedup"])
        new_speedup = float(fresh["speedup"])
        floor = base_speedup * (1.0 - max_regression)
        status = "ok"
        if not fresh.get("semantics_identical", False):
            status = "FAIL: semantics diverged"
            failures.append(
                "%s/%s: semantics_identical is false" % key[:2]
            )
        elif new_speedup < floor and new_speedup < base_speedup:
            status = "FAIL: regression"
            failures.append(
                "%s/%s: speedup %.3f < %.3f "
                "(reference %.3f, tolerance %d%%)"
                % (key[0], key[1], new_speedup, floor, base_speedup,
                   round(100 * max_regression))
            )
        elif base_speedup >= min_speedup and new_speedup < min_speedup:
            # The floor only binds workloads whose committed reference
            # meets it. A workload the reference itself records below
            # the floor (serve-mixed measures async-pipeline overhead,
            # not a speedup) is gated by the ratio check alone.
            status = "FAIL: below floor"
            failures.append(
                "%s/%s: speedup %.3f < required floor %.3f"
                % (key[0], key[1], new_speedup, min_speedup)
            )
        lines.append(
            "%s %.3f -> %.3f  %s"
            % (label, base_speedup, new_speedup, status)
        )
    for key in sorted(set(new_index) - set(base_index)):
        # Candidate-only workloads still gate: no reference ratio to
        # regress against, but the semantics check and the absolute
        # speedup floor apply — a brand-new fast path must not ship
        # slower than its baseline or with diverging semantics just
        # because the committed reference predates it.
        fresh = new_index[key]
        label = "%-16s %-12s %-14s" % key
        new_speedup = float(fresh["speedup"])
        status = "ok (new workload, floor only)"
        if not fresh.get("semantics_identical", False):
            status = "FAIL: semantics diverged"
            failures.append(
                "%s/%s: semantics_identical is false" % key[:2]
            )
        elif new_speedup < min_speedup:
            status = "FAIL: below floor"
            failures.append(
                "%s/%s: new workload speedup %.3f < required floor %.3f"
                % (key[0], key[1], new_speedup, min_speedup)
            )
        lines.append("%s (none) -> %.3f  %s" % (label, new_speedup, status))
    return failures, lines


def _load(path):
    with open(path) as handle:
        results = json.load(handle)
    if "workloads" not in results:
        raise SystemExit(
            "perfdiff: %s is not a repro.tools.perf result file "
            "(no 'workloads' key)" % path
        )
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.tools.perfdiff", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("base", help="reference BENCH_wall.json")
    parser.add_argument("new", help="freshly measured BENCH_wall.json")
    parser.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        metavar="FRACTION",
        help="tolerated fractional speedup drop per workload "
             "(default %.2f)" % DEFAULT_MAX_REGRESSION,
    )
    parser.add_argument(
        "--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
        metavar="RATIO",
        help="absolute speedup floor every workload must keep "
             "(default %.1f)" % DEFAULT_MIN_SPEEDUP,
    )
    parser.add_argument(
        "--require-all", action="store_true",
        help="fail when a reference workload is missing from the new "
             "results (default: report it as skipped)",
    )
    args = parser.parse_args(argv)

    base = _load(args.base)
    new = _load(args.new)
    failures, lines = compare(
        base, new,
        max_regression=args.max_regression,
        min_speedup=args.min_speedup,
        require_all=args.require_all,
    )
    print("\n".join(lines))
    if failures:
        print()
        print("perfdiff: %d regression(s):" % len(failures))
        for failure in failures:
            print("  %s" % failure)
        return 1
    print()
    print("perfdiff: ok (%d workload(s) compared)" % sum(
        1 for line in lines[1:] if "->" in line
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
