"""Polymorphic inlining: typeswitch emission (§IV).

Following Hölzle and Ungar, a dispatched callsite with a usable
receiver profile is replaced by an if-cascade of exact-type checks —
one per speculated target, most probable first — each guarding a direct
call to the resolved method (which the inlining phase may then replace
with the method's body). The cascade ends in the original virtual call
as a fallback, covering profile pollution and unseen types without
deoptimization machinery.

Branch probabilities on the cascade are derived from the profile
(conditional on the earlier tests having failed), so downstream
frequency annotation prices the fast paths correctly.
"""

from repro.ir import nodes as n
from repro.ir import stamps as st
from repro.errors import IRError


def emit_typeswitch(graph, invoke, targets, program):
    """Replace *invoke* with a typeswitch over *targets*.

    Args:
        graph: the graph containing *invoke* (the compilation root).
        invoke: the dispatched :class:`~repro.ir.nodes.InvokeNode`.
        targets: list of ``(type_name, probability, method)``.
        program: for stamp refinement.

    Returns:
        ``{type_name: direct InvokeNode}`` for the cascade's arms.
    """
    block = invoke.block
    if block is None or block not in graph.blocks:
        raise IRError("invoke is not in this graph")
    position = block.instrs.index(invoke)
    receiver = invoke.inputs[0]
    returns_value = invoke.stamp.kind != st.Stamp.VOID

    # Split the host block after the invoke.
    merge = graph.new_block()
    merge.instrs = block.instrs[position + 1 :]
    for node in merge.instrs:
        node.block = merge
    merge.terminator = block.terminator
    if merge.terminator is not None:
        merge.terminator.block = merge
        for succ in merge.terminator.successors():
            index = succ.pred_index(block)
            succ.preds[index] = merge
    block.instrs = block.instrs[:position]
    block.terminator = None
    merge.frequency = block.frequency

    arm_invokes = {}
    result_inputs = []
    merge_preds = []
    current = block  # block receiving the next type test
    remaining = 1.0
    for type_name, probability, method in targets:
        arm = graph.new_block()
        arm.frequency = block.frequency * probability
        check = graph.register(n.InstanceOfNode(receiver, type_name, exact=True))
        current.append(check)
        conditional = min(0.999, probability / remaining) if remaining > 0 else 0.5
        remaining = max(1e-6, remaining - probability)
        next_block = graph.new_block()
        next_block.frequency = block.frequency * remaining
        terminator = graph.register(
            n.IfNode(check, arm, next_block, conditional)
        )
        current.set_terminator(terminator)
        arm.preds = [current]
        next_block.preds = [current]
        # Arm body: refine the receiver, call directly.
        pi = graph.register(
            n.PiNode(
                receiver,
                receiver.stamp.join(
                    st.ref_stamp(type_name, exact=True, non_null=True), program
                ),
            )
        )
        if pi.stamp.kind == st.Stamp.BOTTOM:
            pi.stamp = st.ref_stamp(type_name, exact=True, non_null=True)
        arm.append(pi)
        args = [pi] + list(invoke.inputs[1:])
        direct = graph.register(
            n.InvokeNode(
                "direct",
                invoke.declared_class,
                invoke.method_name,
                args,
                invoke.stamp,
                target=method,
                bci=invoke.bci,
            )
        )
        direct.frequency = invoke.frequency * probability
        arm.append(direct)
        goto = graph.register(n.GotoNode(merge))
        arm.set_terminator(goto)
        merge_preds.append(arm)
        if returns_value:
            result_inputs.append(direct)
        arm_invokes[type_name] = direct
        current = next_block

    # Fallback: the original dispatched call.
    fallback = graph.register(
        n.InvokeNode(
            invoke.kind,
            invoke.declared_class,
            invoke.method_name,
            list(invoke.inputs),
            invoke.stamp,
            receiver_types=invoke.receiver_types,
            megamorphic=invoke.megamorphic,
            bci=invoke.bci,
        )
    )
    fallback.frequency = invoke.frequency * remaining
    current.append(fallback)
    goto = graph.register(n.GotoNode(merge))
    current.set_terminator(goto)
    merge_preds.append(current)
    if returns_value:
        result_inputs.append(fallback)

    merge.preds = merge_preds
    result = None
    if returns_value:
        phi = graph.register(n.PhiNode(result_inputs, invoke.stamp))
        merge.add_phi(phi)
        phi.recompute_stamp(program)
        result = phi
        graph.replace_uses(invoke, result)
    elif invoke.uses:
        raise IRError("void invoke has uses")
    invoke.clear_inputs()
    # The original invoke node is gone from the block (it was sliced out
    # of block.instrs when splitting); detach it fully.
    invoke.block = None
    return arm_invokes
