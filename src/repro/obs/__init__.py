"""VM-wide observability: metrics, events, and compilation reports.

The paper's argument is quantitative — Eq. 8 benefit/size numbers,
round-by-round expansion, compile-time budgets, code-size curves — and
a JIT without telemetry cannot be debugged or tuned (Graal ships
``-Dgraal.TraceInlining`` and ``-XX:+PrintCompilation`` for exactly
this reason). This package is the measurement substrate for the whole
VM:

- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`): counters,
  gauges and cheap fixed-bucket histograms addressable by dotted names
  (``jit.compile.cycles``, ``interp.ops``, ``codecache.installed_bytes``).
- :class:`EventLog` (:mod:`repro.obs.events`): a structured stream of
  nestable spans (``compile`` → ``build``/``inline``/``optimize``/
  ``lower``) and point events (per-pass node deltas, inlining
  decisions, tier transitions), streamable as JSONL.
- :class:`FlightRecorder` (:mod:`repro.obs.flight`): a bounded
  ring-buffer *flight recorder* holding the most recent provenance
  records (inlining verdicts, speculation decisions, deopt timeline),
  dumpable on crash or on demand as PR 1-schema JSONL.
- :class:`ProvenanceTracer` (:mod:`repro.obs.provenance`): bridges the
  existing :class:`~repro.core.tracing.InlineTracer` into the event
  stream *and* the flight recorder, so inlining decisions appear inline
  in the compilation spans and survive in the bounded ring
  (``SpanInlineTracer`` remains as a compatibility alias).
- :func:`build_report` / :func:`render_report`
  (:mod:`repro.obs.report`): fold an event stream into the
  ``PrintCompilation``-style report printed by
  ``python -m repro.tools.stats``.

An :class:`Observability` object bundles one registry with one event
log and is threaded through :class:`~repro.jit.engine.Engine` and every
layer below it. The default everywhere is :data:`NULL_OBS`, whose
registry and log are inert no-ops — instrumented code only pays an
``obs.enabled`` check, and the deterministic cycle model is untouched
either way (verified by a differential test).

Usage::

    from repro.obs import Observability
    obs = Observability()
    engine = Engine(program, config, inliner=policy, obs=obs)
    ...
    obs.metrics.value("jit.compile.count")
    obs.events.save("events.jsonl")
"""

from repro.obs.events import NULL_EVENTS, EventLog, NullEventLog
from repro.obs.flight import (
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
    read_flight_jsonl,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.provenance import ProvenanceTracer, SpanInlineTracer
from repro.obs.report import build_report, render_report
from repro.obs.timers import NULL_TIMERS, NullPhaseTimers, PhaseTimers


class Observability:
    """One metrics registry, one event log, one set of phase timers,
    one flight recorder."""

    __slots__ = ("metrics", "events", "timers", "flight")

    enabled = True

    def __init__(self, metrics=None, events=None, events_sink=None,
                 timers=None, flight=None, flight_capacity=4096):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = (
            events if events is not None else EventLog(sink=events_sink)
        )
        self.timers = timers if timers is not None else PhaseTimers()
        self.flight = (
            flight
            if flight is not None
            else FlightRecorder(capacity=flight_capacity, metrics=self.metrics)
        )


class _NullObservability:
    """The inert default: all halves are no-ops."""

    __slots__ = ()

    enabled = False
    metrics = NULL_METRICS
    events = NULL_EVENTS
    timers = NULL_TIMERS
    flight = NULL_FLIGHT


NULL_OBS = _NullObservability()


__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_METRICS",
    "EventLog",
    "NullEventLog",
    "NULL_EVENTS",
    "PhaseTimers",
    "NullPhaseTimers",
    "NULL_TIMERS",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "read_flight_jsonl",
    "ProvenanceTracer",
    "SpanInlineTracer",
    "build_report",
    "render_report",
]
