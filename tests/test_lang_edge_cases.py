"""Front-end edge cases: tricky but legal programs."""

import pytest

from repro.errors import ResolveError
from repro.lang import compile_source
from tests.helpers import run_static


def run_main(source):
    program = compile_source(source)
    result, vm, _ = run_static(program, "Main", "run")
    return result, vm


class TestControlFlowEdges:
    def test_value_method_ending_in_loop(self):
        """A while(cond) loop followed by return on the exit path."""
        result, _ = run_main(
            """
            object Main {
              def run(): int {
                var i: int = 0;
                while (i < 5) {
                  if (i == 3) { return 100 + i; }
                  i = i + 1;
                }
                return i;
              }
            }
            """
        )
        assert result == 103

    def test_deeply_nested_blocks(self):
        result, _ = run_main(
            """
            object Main {
              def run(): int {
                var x: int = 0;
                if (true) { if (true) { if (true) { x = 7; } } }
                while (x < 10) { if (x % 2 == 0) { x = x + 1; } else { x = x + 3; } }
                return x;
              }
            }
            """
        )
        # x: 7 -> 10 (odd adds 3), loop exits at 10.
        assert result == 10

    def test_empty_blocks(self):
        result, _ = run_main(
            "object Main { def run(): int { if (true) { } else { } while (false) { } return 5; } }"
        )
        assert result == 5

    def test_boolean_fields_and_params(self):
        result, _ = run_main(
            """
            class Flag {
              var on: bool;
              def flip(v: bool): bool { this.on = !v; return this.on; }
            }
            object Main {
              def run(): int {
                var f: Flag = new Flag;
                if (f.flip(false)) { return 1; }
                return 0;
              }
            }
            """
        )
        assert result == 1


class TestDispatchEdges:
    def test_trait_diamond_single_default(self):
        """Two paths to one trait: the default resolves unambiguously."""
        result, _ = run_main(
            """
            trait Base { def v(): int { return 3; } }
            trait Left implements Base { }
            trait Right implements Base { }
            class Both implements Left, Right { }
            object Main {
              def run(): int { return new Both().v(); }
            }
            """
        )
        assert result == 3

    def test_override_of_default_method(self):
        result, _ = run_main(
            """
            trait Base { def v(): int { return 3; } }
            class Custom implements Base { def v(): int { return 9; } }
            object Main {
              def run(): int {
                var b: Base = new Custom;
                return b.v();
              }
            }
            """
        )
        assert result == 9

    def test_three_level_super_chain(self):
        result, _ = run_main(
            """
            class A { def f(): int { return 1; } }
            class B extends A { def f(): int { return super.f() * 10 + 2; } }
            class C extends B { def f(): int { return super.f() * 10 + 3; } }
            object Main { def run(): int { return new C().f(); } }
            """
        )
        assert result == 123

    def test_inherited_constructor(self):
        result, _ = run_main(
            """
            class Base {
              var v: int;
              def init(v: int): void { this.v = v; }
            }
            class Sub extends Base { }
            object Main { def run(): int { return new Sub(8).v; } }
            """
        )
        assert result == 8


class TestArraysAndCasts:
    def test_array_of_arrays(self):
        result, _ = run_main(
            """
            object Main {
              def run(): int {
                var grid: int[][] = new int[3][];
                var i: int = 0;
                while (i < 3) { grid[i] = new int[4]; grid[i][i] = i + 1; i = i + 1; }
                return grid[0][0] + grid[1][1] * 10 + grid[2][2] * 100;
              }
            }
            """
        )
        assert result == 321

    def test_object_array_covariant_store(self):
        result, _ = run_main(
            """
            class P { var v: int; }
            object Main {
              def run(): int {
                var objs: Object[] = new Object[2];
                var p: P = new P;
                p.v = 6;
                objs[0] = p;
                var back: P = objs[0] as P;
                return back.v;
              }
            }
            """
        )
        assert result == 6

    def test_is_on_array_typed_value(self):
        result, _ = run_main(
            """
            object Main {
              def run(): int {
                var o: Object = new int[3];
                if (o is int[]) { return 1; }
                return 0;
              }
            }
            """
        )
        assert result == 1


class TestLambdaEdges:
    def test_lambda_returning_lambda(self):
        result, _ = run_main(
            """
            object Main {
              def run(): int {
                var make: IntToObjFn = fun (k: int): Object {
                  return fun (x: int): int => x + k;
                };
                var add5: IntFn1 = make.apply(5) as IntFn1;
                return add5.apply(10);
              }
            }
            """
        )
        assert result == 15

    def test_lambda_in_static_without_this(self):
        result, _ = run_main(
            """
            object Main {
              def run(): int {
                var f: IntFn0 = fun (): int => 42;
                return f.apply();
              }
            }
            """
        )
        assert result == 42

    def test_lambda_cannot_use_this_in_static(self):
        with pytest.raises(ResolveError):
            compile_source(
                """
                object Main {
                  def run(): int {
                    var f: IntFn0 = fun (): int => this.x;
                    return f.apply();
                  }
                }
                """
            )

    def test_two_lambdas_same_signature_distinct_classes(self):
        program = compile_source(
            """
            object Main {
              def run(): int {
                var a: IntFn1 = fun (x: int): int => x + 1;
                var b: IntFn1 = fun (x: int): int => x * 2;
                return a.apply(10) + b.apply(10);
              }
            }
            """
        )
        lambdas = [c for c in program.classes if c.startswith("$Lambda")]
        assert len(lambdas) == 2
        result, _, _ = run_static(program, "Main", "run")
        assert result == 31
