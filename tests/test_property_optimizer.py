"""Property tests for the optimizer: random expression programs must
fold to the same values the interpreter computes, through every stage
of the pipeline and the inliner.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bytecode import MethodBuilder, Op, verify_program
from repro.ir import build_graph, check_graph
from repro.opts import OptimizationPipeline, canonicalize
from tests.execution import execute_graph
from tests.helpers import fresh_program, run_static

_BIN_OPS = [Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR]


@st.composite
def expression_builders(draw):
    """A random expression over two int params as emitter instructions.

    Returns (emit_ops, depth) where emit_ops is a list of closures over
    a MethodBuilder maintaining stack discipline (each closure nets +1
    stack entry is false — the list as a whole produces one value).
    """
    operations = []

    def gen(depth):
        choice = draw(st.integers(0, 3 if depth < 4 else 1))
        if choice == 0:
            value = draw(st.integers(-64, 64))
            operations.append(("const", value))
        elif choice == 1:
            slot = draw(st.integers(0, 1))
            operations.append(("load", slot))
        elif choice == 2:
            gen(depth + 1)
            gen(depth + 1)
            operations.append(("bin", draw(st.sampled_from(_BIN_OPS))))
        else:
            gen(depth + 1)
            operations.append(("neg", None))

    gen(0)
    return operations


def _build_program(operations):
    program = fresh_program()
    holder = program.define_class("T", is_abstract=True)
    builder = MethodBuilder("f", ["int", "int"], "int", is_static=True)
    for kind, payload in operations:
        if kind == "const":
            builder.const(payload)
        elif kind == "load":
            builder.load(payload)
        elif kind == "bin":
            builder.emit(payload)
        else:
            builder.neg()
    builder.retv()
    holder.add_method(builder.build())
    verify_program(program)
    return program


class TestCanonicalizationSoundness:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(expression_builders(), st.integers(-100, 100), st.integers(-100, 100))
    def test_canonicalized_value_matches_interpreter(self, operations, a, b):
        program = _build_program(operations)
        expected, _, _ = run_static(program, "T", "f", [a, b])
        graph = build_graph(program.lookup_method("T", "f"), program)
        canonicalize(graph, program)
        check_graph(graph, program)
        actual, _ = execute_graph(graph, program, [a, b])
        assert actual == expected

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(expression_builders())
    def test_constant_inputs_fold_completely(self, operations):
        """With both params replaced by constants, the whole expression
        must fold to a single return of a constant."""
        from repro.ir import stamps as stm
        from repro.ir import nodes as n
        from repro.opts import remove_dead_nodes

        program = _build_program(operations)
        expected, _, _ = run_static(program, "T", "f", [7, -3])
        graph = build_graph(program.lookup_method("T", "f"), program)
        graph.params[0].stamp = stm.constant_int(7)
        graph.params[1].stamp = stm.constant_int(-3)
        canonicalize(graph, program)
        remove_dead_nodes(graph)
        check_graph(graph, program)
        (ret,) = [
            blk.terminator
            for blk in graph.blocks
            if isinstance(blk.terminator, n.ReturnNode)
        ]
        assert ret.value().stamp.constant_value() == expected

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(expression_builders(), st.integers(-50, 50), st.integers(-50, 50))
    def test_full_pipeline_idempotent(self, operations, a, b):
        """Running the pipeline twice must not change results (and the
        second run must not find more work on an already-canonical
        graph's node count)."""
        program = _build_program(operations)
        graph = build_graph(program.lookup_method("T", "f"), program)
        pipeline = OptimizationPipeline(program)
        pipeline.run(graph)
        first = graph.node_count()
        value_first, _ = execute_graph(graph, program, [a, b])
        pipeline.run(graph)
        assert graph.node_count() == first
        value_second, _ = execute_graph(graph, program, [a, b])
        assert value_first == value_second
