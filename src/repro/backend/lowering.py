"""IR → machine code lowering.

Register allocation is trivial (one virtual register per SSA value plus
one scratch register for phi-cycle breaking); what this pass actually
has to get right is control flow:

- phis become *parallel copies* on incoming edges, sequentialized with
  the classic cycle-breaking algorithm;
- conditional edges that carry moves get a branch stub appended after
  the block layout (edge splitting);
- every block is prefixed with a ``COST`` pseudo-instruction carrying
  its precomputed cycle price from the :class:`~repro.backend.costmodel.CostModel`.
"""

from repro.backend import machine as m
from repro.backend.costmodel import CostModel
from repro.errors import CompileError
from repro.ir import nodes as n
from repro.ir import stamps as st


_BINOP_TO_MACHINE = {
    "ADD": m.M_ADD,
    "SUB": m.M_SUB,
    "MUL": m.M_MUL,
    "DIV": m.M_DIV,
    "REM": m.M_REM,
    "AND": m.M_AND,
    "OR": m.M_OR,
    "XOR": m.M_XOR,
    "SHL": m.M_SHL,
    "SHR": m.M_SHR,
}

_CMP_TO_MACHINE = {
    "EQ": m.M_EQ,
    "NE": m.M_NE,
    "LT": m.M_LT,
    "LE": m.M_LE,
    "GT": m.M_GT,
    "GE": m.M_GE,
    "REF_EQ": m.M_REFEQ,
    "REF_NE": m.M_REFNE,
}


def lower_graph(graph, cost_model=None):
    """Lower *graph* to :class:`~repro.backend.machine.MachineCode`."""
    return _Lowering(graph, cost_model or CostModel()).run()


class _Lowering:
    def __init__(self, graph, cost_model):
        self.graph = graph
        self.cost = cost_model
        self.regs = {}
        self.next_reg = 0
        self.instrs = []
        self.block_offsets = {}
        self.fixups = []  # (instr index, operand slot, target block)
        self.stubs = []  # (stub label id, moves, target block)
        self.stub_offsets = {}
        self.deopt_table = []  # FrameTemplate tuples, one per deopt point

    # -- registers ---------------------------------------------------------

    def _reg(self, node):
        reg = self.regs.get(node)
        if reg is None:
            reg = self.next_reg
            self.next_reg += 1
            self.regs[node] = reg
        return reg

    # -- main ---------------------------------------------------------------

    def run(self):
        graph = self.graph
        order = graph.reverse_postorder()
        for param in graph.params:
            self._reg(param)  # registers 0..n-1 hold the arguments
        for block in order:
            self.block_offsets[block] = len(self.instrs)
            self._emit_block(block, order)
        self._emit_stubs()
        self._patch_fixups()
        return m.MachineCode(
            graph.method,
            self.instrs,
            self.next_reg + 1,
            self.cost.METHOD_ENTRY,
            deopt_table=self.deopt_table,
        )

    def _emit(self, *instr):
        self.instrs.append(instr)
        return len(self.instrs) - 1

    def _emit_jump_to(self, block):
        index = self._emit(m.M_JMP, -1)
        self.fixups.append((index, 1, block))

    def _emit_block(self, block, order):
        cost = sum(self.cost.node_cost(node) for node in block.instrs)
        if block.terminator is not None:
            cost += self.cost.node_cost(block.terminator)
        self._emit(m.M_COST, cost)
        for node in block.instrs:
            self._emit_node(node)
        term = block.terminator
        if isinstance(term, n.ReturnNode):
            value = term.value()
            if value is None:
                self._emit(m.M_RET)
            else:
                self._emit(m.M_RETV, self._reg(value))
        elif isinstance(term, n.GotoNode):
            self._emit_moves(self._edge_moves(block, term.target))
            self._emit_jump_to(term.target)
        elif isinstance(term, n.IfNode):
            true_moves = self._edge_moves(block, term.true_block)
            false_moves = self._edge_moves(block, term.false_block)
            cond = self._reg(term.inputs[0])
            if true_moves:
                stub = len(self.stubs)
                self.stubs.append((stub, true_moves, term.true_block))
                index = self._emit(m.M_BR, cond, -1)
                self.fixups.append((index, 2, ("stub", stub)))
            else:
                index = self._emit(m.M_BR, cond, -1)
                self.fixups.append((index, 2, term.true_block))
            self._emit_moves(false_moves)
            self._emit_jump_to(term.false_block)
        elif isinstance(term, n.DeoptNode):
            index = self._deopt_entry(term.frames, term.state_values)
            self._emit(m.M_DEOPT, index, term.reason)
        elif term is None:
            raise CompileError("block B%d has no terminator" % block.id)
        else:
            raise CompileError("unknown terminator %r" % (term,))

    # -- nodes -----------------------------------------------------------------

    def _emit_node(self, node):
        t = type(node)
        if t is n.ConstIntNode:
            self._emit(m.M_MOVI, self._reg(node), node.value)
        elif t is n.ConstNullNode:
            self._emit(m.M_MOVNULL, self._reg(node))
        elif t is n.BinOpNode:
            self._emit(
                _BINOP_TO_MACHINE[node.op],
                self._reg(node),
                self._reg(node.inputs[0]),
                self._reg(node.inputs[1]),
            )
        elif t is n.NegNode:
            self._emit(m.M_NEG, self._reg(node), self._reg(node.inputs[0]))
        elif t is n.CompareNode:
            self._emit(
                _CMP_TO_MACHINE[node.op],
                self._reg(node),
                self._reg(node.inputs[0]),
                self._reg(node.inputs[1]),
            )
        elif t is n.NewNode:
            self._emit(m.M_NEW, self._reg(node), node.class_name)
        elif t is n.NewArrayNode:
            self._emit(
                m.M_NEWARR,
                self._reg(node),
                self._reg(node.inputs[0]),
                node.elem_type,
            )
        elif t is n.ArrayLoadNode:
            self._emit(
                m.M_ALOAD,
                self._reg(node),
                self._reg(node.inputs[0]),
                self._reg(node.inputs[1]),
            )
        elif t is n.ArrayStoreNode:
            self._emit(
                m.M_ASTORE,
                self._reg(node.inputs[0]),
                self._reg(node.inputs[1]),
                self._reg(node.inputs[2]),
            )
        elif t is n.ArrayLengthNode:
            self._emit(m.M_ALEN, self._reg(node), self._reg(node.inputs[0]))
        elif t is n.LoadFieldNode:
            self._emit(
                m.M_GETF,
                self._reg(node),
                self._reg(node.inputs[0]),
                node.field_name,
            )
        elif t is n.StoreFieldNode:
            self._emit(
                m.M_PUTF,
                self._reg(node.inputs[0]),
                node.field_name,
                self._reg(node.inputs[1]),
            )
        elif t is n.LoadStaticNode:
            self._emit(
                m.M_GETS, self._reg(node), node.class_name, node.field_name
            )
        elif t is n.StoreStaticNode:
            self._emit(
                m.M_PUTS,
                node.class_name,
                node.field_name,
                self._reg(node.inputs[0]),
            )
        elif t is n.InstanceOfNode:
            opcode = m.M_ISEXACT if node.exact else m.M_ISINST
            self._emit(
                opcode, self._reg(node), self._reg(node.inputs[0]), node.type_name
            )
        elif t is n.CheckCastNode:
            self._emit(
                m.M_CAST, self._reg(node), self._reg(node.inputs[0]), node.type_name
            )
        elif t is n.PiNode:
            self._emit(m.M_MOV, self._reg(node), self._reg(node.inputs[0]))
        elif t is n.InvokeNode:
            self._emit_invoke(node)
        elif t is n.GuardNode:
            index = self._deopt_entry(node.frames, node.state_values)
            self._emit(m.M_GUARD, self._reg(node.inputs[0]), index, node.reason)
        else:
            raise CompileError("cannot lower node %r" % (node,))

    def _deopt_entry(self, frames, state_values):
        """Build a deopt-table entry mapping frame state to registers.

        The state values are grouped per frame, innermost first; each
        frame consumes its defined locals then its operand stack (see
        :class:`~repro.deopt.FrameDescriptor`).
        """
        from repro.deopt import FrameTemplate

        def state_reg(value):
            # A null state value is a local undefined along the
            # executed path; register -1 materializes it as NULL.
            return -1 if value is None else self._reg(value)

        templates = []
        cursor = 0
        for frame in frames:
            local_regs = []
            for slot in frame.local_slots:
                local_regs.append((slot, state_reg(state_values[cursor])))
                cursor += 1
            stack_regs = []
            for _ in range(frame.n_stack):
                stack_regs.append(state_reg(state_values[cursor]))
                cursor += 1
            templates.append(
                FrameTemplate(
                    frame.method,
                    frame.bci,
                    local_regs,
                    stack_regs,
                    frame.argc,
                    frame.pushes_result,
                )
            )
        if cursor != len(state_values):
            raise CompileError(
                "frame state mismatch: %d values for %d slots"
                % (len(state_values), cursor)
            )
        self.deopt_table.append(tuple(templates))
        return len(self.deopt_table) - 1

    def _emit_invoke(self, node):
        result = self._reg(node) if node.stamp.kind != st.Stamp.VOID else -1
        arg_regs = tuple(self._reg(a) for a in node.inputs[: node.n_args])
        if node.kind in ("static", "special", "direct"):
            if node.target is None:
                raise CompileError("direct call without target: %r" % (node,))
            self._emit(m.M_CALL, result, node.target, arg_regs)
        else:
            self._emit(m.M_VCALL, result, node.method_name, arg_regs)

    # -- phi moves -----------------------------------------------------------------

    def _edge_moves(self, pred, succ):
        """Parallel copies for the edge *pred*→*succ*."""
        if not succ.phis:
            return []
        index = succ.pred_index(pred)
        moves = []
        for phi in succ.phis:
            source = phi.inputs[index]
            if source is None:
                continue
            dst = self._reg(phi)
            src = self._reg(source)
            if dst != src:
                moves.append((dst, src))
        return moves

    def _emit_moves(self, moves):
        """Sequentialize a parallel copy, breaking cycles with a temp."""
        pending = dict(moves)  # dst -> src
        temp = self.next_reg  # reserved scratch register
        while pending:
            sources = set(pending.values())
            ready = [d for d in pending if d not in sources]
            if ready:
                for dst in ready:
                    self._emit(m.M_MOV, dst, pending.pop(dst))
                continue
            # Pure cycle: save one destination into the scratch register
            # and redirect its readers there.
            dst = next(iter(pending))
            self._emit(m.M_MOV, temp, dst)
            for d, s in list(pending.items()):
                if s == dst:
                    pending[d] = temp
            # dst is no longer anyone's source: safe next round.

    # -- stubs and fixups ---------------------------------------------------------------

    def _emit_stubs(self):
        for stub_id, moves, target in self.stubs:
            self.stub_offsets[stub_id] = len(self.instrs)
            self._emit_moves(moves)
            self._emit_jump_to(target)

    def _patch_fixups(self):
        for index, slot, target in self.fixups:
            if isinstance(target, tuple) and target[0] == "stub":
                offset = self.stub_offsets[target[1]]
            else:
                offset = self.block_offsets[target]
            instr = list(self.instrs[index])
            instr[slot] = offset
            self.instrs[index] = tuple(instr)
