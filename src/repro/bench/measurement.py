"""The measurement protocol of §V.

"For each datapoint, we executed the measurements in 5 separate JVM
instances, and we report both the mean and standard deviation. In each
JVM instance, we measured peak performance – we repeated each benchmark
a predefined number of times, and we computed the average of the last
40% (but at most 20) repetitions."

A VM instance here is a fresh :class:`~repro.jit.engine.Engine`:
zeroed statics, empty profiles, empty code cache, instance-specific
PRNG seed. Instances default to 3 (not 5) to keep the full sweep
tractable on a laptop; the protocol is otherwise identical and the
instance count is a parameter.
"""

import math
import time

from repro.jit.config import JitConfig
from repro.jit.engine import Engine


class Measurement:
    """One benchmark × configuration data point."""

    __slots__ = (
        "benchmark",
        "config_name",
        "mean_cycles",
        "std_cycles",
        "installed_size",
        "values",
        "warmup_curves",
        "compilations",
        "metrics",
        "wall_seconds",
    )

    def __init__(self, benchmark, config_name):
        self.benchmark = benchmark
        self.config_name = config_name
        self.mean_cycles = 0.0
        self.std_cycles = 0.0
        self.installed_size = 0
        self.values = []
        self.warmup_curves = []
        self.compilations = 0
        self.metrics = []  # one metrics snapshot per instrumented instance
        #: Host wall-clock seconds spent running iterations, summed
        #: over all VM instances. Telemetry only — the deterministic
        #: cycle fields never depend on it.
        self.wall_seconds = 0.0

    def as_dict(self):
        """The measurement as a plain dict (the JSON metrics artifact)."""
        return {
            "benchmark": self.benchmark,
            "config": self.config_name,
            "mean_cycles": self.mean_cycles,
            "std_cycles": self.std_cycles,
            "installed_size": self.installed_size,
            "compilations": self.compilations,
            "values": self.values,
            "warmup_curves": self.warmup_curves,
            "metrics": self.metrics,
            "wall_seconds": self.wall_seconds,
        }

    def __repr__(self):
        return "<%s/%s %.0f ±%.0f cycles, %d code>" % (
            self.benchmark,
            self.config_name,
            self.mean_cycles,
            self.std_cycles,
            self.installed_size,
        )


def steady_window(iterations):
    """Number of trailing iterations averaged for the steady state."""
    return max(1, min(20, int(iterations * 0.4)))


def measure_benchmark(
    program,
    inliner_factory,
    benchmark_name="bench",
    config_name="config",
    entry=("Main", "run"),
    instances=3,
    iterations=12,
    jit_config_factory=None,
    base_seed=0x5EED,
    obs_factory=None,
):
    """Run one benchmark under one configuration.

    Args:
        program: the shared :class:`~repro.bytecode.program.Program`
            (static state lives in each engine's VMState, so sharing
            the immutable bytecode across instances is safe).
        inliner_factory: zero-argument callable creating a fresh
            inlining policy (or returning None for the interpreter-fed
            no-inlining compiler).
        jit_config_factory: optional callable creating the
            :class:`~repro.jit.config.JitConfig` per instance.
        obs_factory: optional zero-argument callable creating a fresh
            :class:`~repro.obs.Observability` per VM instance; each
            instance's metrics snapshot is appended to
            ``result.metrics``. The default (None) leaves the engines
            un-instrumented, which keeps the cycle model bit-identical.
    """
    result = Measurement(benchmark_name, config_name)
    steady_means = []
    window = steady_window(iterations)
    for instance in range(instances):
        config = (
            jit_config_factory() if jit_config_factory is not None else JitConfig()
        )
        obs = obs_factory() if obs_factory is not None else None
        engine = Engine(
            program,
            config,
            inliner=inliner_factory() if inliner_factory is not None else None,
            seed=base_seed + 7919 * instance,
            obs=obs,
        )
        curve = []
        value = None
        wall_start = time.perf_counter()
        for _ in range(iterations):
            iteration = engine.run_iteration(entry[0], entry[1])
            curve.append(iteration.total_cycles)
            value = iteration.value
        result.wall_seconds += time.perf_counter() - wall_start
        steady = curve[-window:]
        steady_means.append(sum(steady) / len(steady))
        result.warmup_curves.append(curve)
        result.values.append(value)
        result.installed_size = max(
            result.installed_size, engine.code_cache.total_size
        )
        result.compilations += engine.compilation_count
        if obs is not None:
            result.metrics.append(obs.metrics.snapshot())
    result.mean_cycles = sum(steady_means) / len(steady_means)
    if len(steady_means) > 1:
        mean = result.mean_cycles
        variance = sum((m - mean) ** 2 for m in steady_means) / (
            len(steady_means) - 1
        )
        result.std_cycles = math.sqrt(variance)
    return result
