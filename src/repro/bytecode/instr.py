"""The single-instruction representation."""

from repro.bytecode.opcodes import ALL_OPS
from repro.errors import BytecodeError


class Instr:
    """One bytecode instruction: an opcode plus immediate operands.

    Instructions are immutable value objects. Branch targets are integer
    indices into the enclosing method's code list (the assembler resolves
    symbolic labels to indices before constructing instructions).
    """

    __slots__ = ("op", "args")

    def __init__(self, op, *args):
        if op not in ALL_OPS:
            raise BytecodeError("unknown opcode %r" % (op,))
        self.op = op
        self.args = args

    def with_target(self, target):
        """Return a copy of this branch instruction aimed at *target*."""
        return Instr(self.op, target, *self.args[1:])

    @property
    def target(self):
        """The jump target of a branch instruction."""
        return self.args[0]

    def __repr__(self):
        if self.args:
            return "Instr(%s, %s)" % (self.op, ", ".join(map(repr, self.args)))
        return "Instr(%s)" % self.op

    def __eq__(self, other):
        return (
            isinstance(other, Instr) and self.op == other.op and self.args == other.args
        )

    def __hash__(self):
        return hash((self.op, self.args))
