"""Multi-tenant VM serving: background compilation, shared caches.

The paper's algorithm is designed for the *online* JIT setting —
inlining decisions made incrementally while the program runs. This
package makes that setting real: compilation requests are enqueued on a
bounded :class:`~repro.serve.queue.CompileQueue` and drained by
:class:`~repro.serve.scheduler.BackgroundCompiler` worker threads while
interpretation continues, and a :class:`~repro.serve.service.VMService`
hosts many tenant workloads in one process over a shared, sharded
:class:`~repro.jit.codecache.SharedCodeCache` with per-tenant quotas
and eviction under a global memory budget.

Determinism contract: ``REPRO_COMPILE=sync`` pins every engine back to
the classic synchronous compile path, so all the fast paths stay
differential-testable bit-identical against the classic engine; in
async mode per-iteration *values*, *trap kinds* and *printed output*
are still bit-identical (only cycle attribution changes — background
compile cycles are no longer charged to the running iteration).
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDenied,
    ServiceConfig,
    TenantSpec,
)
from repro.serve.profiles import SharedProfileAggregator, TenantProfileStore
from repro.serve.queue import CompileQueue, CompileRequest
from repro.serve.scheduler import BackgroundCompiler
from repro.serve.service import ServiceReport, VMService
from repro.serve.tenant import Tenant

__all__ = [
    "AdmissionController",
    "AdmissionDenied",
    "BackgroundCompiler",
    "CompileQueue",
    "CompileRequest",
    "ServiceConfig",
    "ServiceReport",
    "SharedProfileAggregator",
    "Tenant",
    "TenantProfileStore",
    "TenantSpec",
    "VMService",
]
