# entry: Main.main
# found-by: hand-built probe while developing the fuzzer (PR: repro.fuzz)
# pinned: RWE dead-store elimination across a trapping DIV — the
# "dead" store is observable because the trap aborts the iteration and
# the object escapes through a static; culprit was opts/rwelim.py.
abstract class Main {
  static field obj: A
  static field d: int
  static method main() -> int {
    GETSTATIC Main obj
    NULL
    REF_EQ
    IF init
    GOTO body
  init:
    NEW A
    PUTSTATIC Main obj
  body:
    GETSTATIC Main obj
    GETFIELD A x
    INVOKESTATIC Builtins print
    GETSTATIC Main obj
    GETSTATIC Main obj
    GETFIELD A x
    CONST 1
    ADD
    PUTFIELD A x
    CONST 100
    GETSTATIC Main d
    DIV
    POP
    GETSTATIC Main obj
    CONST 0
    PUTFIELD A x
    GETSTATIC Main obj
    GETFIELD A x
    RETV
  }
}
class A {
  field x: int
}
