"""Figure 5 — warmup curves.

The paper shows per-iteration times for selected benchmarks to
demonstrate that the new inliner "does not incur a significant
compilation overhead": warmup curves under the incremental inliner
stabilize after a similar number of iterations as the baselines.

We regenerate the series (per-iteration total cycles, including the
cycles the JIT itself consumes) for the same kind of benchmark
selection, print them, and assert both properties the figure conveys:
(1) every configuration converges to a steady state, and (2) the
incremental inliner's steady state arrives within a few iterations of
greedy's.
"""

from benchmarks.conftest import INSTANCES
from repro.bench.configs import CONFIG_FACTORIES
from repro.bench.measurement import measure_benchmark
from repro.bench.suite import get_benchmark

WARMUP_BENCHMARKS = ["factorie", "jython", "scalariform"]
CONFIGS = ["greedy", "incremental"]
ITERATIONS = 14


def _stabilization_point(curve, tolerance=0.15):
    """First iteration from which the curve stays within *tolerance*
    of its final steady value."""
    steady = sum(curve[-4:]) / 4.0
    for index, value in enumerate(curve):
        tail = curve[index:]
        if all(abs(v - steady) <= tolerance * steady for v in tail):
            return index
    return len(curve) - 1


def test_fig5_warmup_curves(benchmark, steady_engine_factory):
    print("\n== Figure 5: warmup curves (per-iteration cycles) ==")
    stabilization = {}
    for name in WARMUP_BENCHMARKS:
        spec = get_benchmark(name)
        program = spec.load()
        for config in CONFIGS:
            measurement = measure_benchmark(
                program,
                CONFIG_FACTORIES[config],
                benchmark_name=name,
                config_name=config,
                instances=1,
                iterations=ITERATIONS,
                jit_config_factory=spec.jit_config_factory,
            )
            curve = measurement.warmup_curves[0]
            stabilization[(name, config)] = _stabilization_point(curve)
            print(
                "%-12s %-12s %s"
                % (name, config, " ".join("%7d" % v for v in curve))
            )

    for name in WARMUP_BENCHMARKS:
        incremental = stabilization[(name, "incremental")]
        greedy = stabilization[(name, "greedy")]
        # Both must actually reach steady state inside the run...
        assert incremental < ITERATIONS - 1, name
        assert greedy < ITERATIONS - 1, name
        # ...and the new inliner must not warm up dramatically later
        # (the paper's "warmup curves reach stability after a similar
        # time"; we allow a few iterations of slack).
        assert incremental <= greedy + 4, (
            "%s: incremental stabilizes at %d vs greedy %d"
            % (name, incremental, greedy)
        )

    # Host-time benchmark of one steady iteration (pytest-benchmark).
    engine = steady_engine_factory("factorie", "incremental")
    benchmark(engine.run_iteration, "Main", "run")
