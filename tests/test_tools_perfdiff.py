"""The perfdiff gate: identical results pass, regressed speedups fail,
semantics divergence always fails, quick-matrix gaps are tolerated."""

import copy
import json
import os

import pytest

from repro.tools import perfdiff
from repro.tools.perfdiff import compare

REFERENCE = {
    "tool": "repro.tools.perf",
    "quick": False,
    "workloads": [
        {
            "baseline": {"name": "interp-classic", "seconds": 0.15},
            "fast": {"name": "interp-predecode", "seconds": 0.06},
            "clock": "wall",
            "speedup": 2.4,
            "reduction_percent": 58.2,
            "semantics_identical": True,
            "repeats": 5,
            "iterations": 2,
            "workload": "interpreter-bound",
            "benchmark": "gauss-mix",
        },
        {
            "baseline": {"name": "compile-classic", "seconds": 2.58},
            "fast": {"name": "compile-fast", "seconds": 1.40},
            "clock": "compile_phase",
            "speedup": 1.84,
            "reduction_percent": 45.7,
            "semantics_identical": True,
            "repeats": 3,
            "iterations": 6,
            "workload": "compile-bound",
            "benchmark": "scaladoc",
        },
    ],
}


def variant(**overrides):
    """A deep copy of REFERENCE with per-benchmark field overrides:
    variant(scaladoc={"speedup": 0.9})."""
    results = copy.deepcopy(REFERENCE)
    for entry in results["workloads"]:
        for key, value in overrides.get(entry["benchmark"], {}).items():
            entry[key] = value
    return results


class TestCompare:
    def test_identical_results_pass(self):
        failures, lines = compare(REFERENCE, copy.deepcopy(REFERENCE))
        assert failures == []
        assert sum("ok" in line for line in lines) == 2

    def test_regression_beyond_tolerance_fails(self):
        new = variant(scaladoc={"speedup": 0.9})  # 1.84 -> 0.9: -51%
        failures, _ = compare(REFERENCE, new)
        assert len(failures) == 1
        assert "scaladoc" in failures[0]
        assert "0.900" in failures[0]

    def test_drop_within_tolerance_passes(self):
        new = variant(scaladoc={"speedup": 1.5})  # -18%, under 35%
        failures, _ = compare(REFERENCE, new)
        assert failures == []

    def test_improvement_passes(self):
        new = variant(**{"gauss-mix": {"speedup": 9.9}})
        failures, lines = compare(REFERENCE, new)
        assert failures == []
        assert any("9.900" in line for line in lines)

    def test_semantics_divergence_always_fails(self):
        new = variant(scaladoc={"semantics_identical": False})
        failures, _ = compare(REFERENCE, new)
        assert len(failures) == 1
        assert "semantics" in failures[0]

    def test_below_absolute_floor_fails(self):
        # Within the 35% relative tolerance of a modest reference but
        # slower than its own baseline: the floor catches it.
        base = variant(scaladoc={"speedup": 1.3})
        new = variant(scaladoc={"speedup": 0.98})
        failures, _ = compare(base, new, max_regression=0.35)
        assert len(failures) == 1
        assert "floor" in failures[0]

    def test_floor_unbound_when_reference_below_it(self):
        # serve-mixed commits a sub-1.0 "speedup" (async overhead):
        # the absolute floor must not bind a matched workload whose
        # own reference never met it — only the ratio check applies.
        base = variant(scaladoc={"speedup": 0.75})
        new = variant(scaladoc={"speedup": 0.74})
        failures, _ = compare(base, new)
        assert failures == []
        # ...but a genuine ratio regression on such a workload fails.
        worse = variant(scaladoc={"speedup": 0.40})
        failures, _ = compare(base, worse)
        assert len(failures) == 1
        assert "tolerance" in failures[0]

    def test_missing_workload_skipped_by_default(self):
        new = copy.deepcopy(REFERENCE)
        new["workloads"] = [
            w for w in new["workloads"] if w["benchmark"] != "scaladoc"
        ]
        failures, lines = compare(REFERENCE, new)
        assert failures == []
        assert any("skipped" in line for line in lines)

    def test_missing_workload_fails_with_require_all(self):
        new = copy.deepcopy(REFERENCE)
        new["workloads"] = [
            w for w in new["workloads"] if w["benchmark"] != "scaladoc"
        ]
        failures, _ = compare(REFERENCE, new, require_all=True)
        assert len(failures) == 1
        assert "missing" in failures[0]

    def test_extra_workload_gated_on_floor(self):
        # Candidate-only workloads have no reference ratio but still
        # gate on semantics + the absolute speedup floor.
        new = copy.deepcopy(REFERENCE)
        extra = copy.deepcopy(new["workloads"][0])
        extra["benchmark"] = "brand-new"
        new["workloads"].append(extra)
        failures, lines = compare(REFERENCE, new)
        assert failures == []
        assert any("new workload, floor only" in line for line in lines)

    def test_extra_workload_below_floor_fails(self):
        new = copy.deepcopy(REFERENCE)
        extra = copy.deepcopy(new["workloads"][0])
        extra["benchmark"] = "brand-new"
        extra["speedup"] = 0.8
        new["workloads"].append(extra)
        failures, _ = compare(REFERENCE, new)
        assert len(failures) == 1
        assert "floor" in failures[0]

    def test_extra_workload_semantics_divergence_fails(self):
        new = copy.deepcopy(REFERENCE)
        extra = copy.deepcopy(new["workloads"][0])
        extra["benchmark"] = "brand-new"
        extra["semantics_identical"] = False
        new["workloads"].append(extra)
        failures, _ = compare(REFERENCE, new)
        assert len(failures) == 1
        assert "semantics" in failures[0]


class TestCli:
    def write(self, path, results):
        with open(path, "w") as handle:
            json.dump(results, handle)
        return str(path)

    def test_exit_zero_on_identical(self, tmp_path, capsys):
        base = self.write(tmp_path / "base.json", REFERENCE)
        new = self.write(tmp_path / "new.json", REFERENCE)
        assert perfdiff.main([base, new]) == 0
        assert "perfdiff: ok" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        base = self.write(tmp_path / "base.json", REFERENCE)
        new = self.write(
            tmp_path / "new.json", variant(scaladoc={"speedup": 0.5})
        )
        assert perfdiff.main([base, new]) == 1
        assert "regression" in capsys.readouterr().out

    def test_rejects_non_perf_files(self, tmp_path):
        bogus = self.write(tmp_path / "bogus.json", {"something": "else"})
        base = self.write(tmp_path / "base.json", REFERENCE)
        with pytest.raises(SystemExit):
            perfdiff.main([base, bogus])


class TestCommittedReference:
    def test_committed_bench_wall_passes_against_itself(self):
        """The exact invocation CI's perf gate depends on."""
        path = os.path.join(
            os.path.dirname(__file__), "..", "BENCH_wall.json"
        )
        assert perfdiff.main([path, path]) == 0
