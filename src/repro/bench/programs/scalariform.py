"""scalariform — Scala source formatting.

scalariform re-lexes source and applies formatting rules to the token
stream. We model the rule engine: a token list pushed through a ``Seq``
of polymorphic rules, each deciding spacing via small predicates; a
second pass measures line lengths through fold lambdas. (Paper: ≈7%
over C2.)
"""

DESCRIPTION = "formatting rules over token streams with predicate lambdas"
ITERATIONS = 14

SOURCE = """
class Token {
  var kind: int;      // 0 ident, 1 punct, 2 keyword, 3 newline
  var width: int;
  var spaceBefore: int;
  def init(kind: int, width: int): void {
    this.kind = kind; this.width = width; this.spaceBefore = 0;
  }
}

trait Rule {
  def applies(prev: Token, cur: Token): bool;
  def spacing(): int;
}

class SpaceAroundKeyword implements Rule {
  def applies(prev: Token, cur: Token): bool {
    return cur.kind == 2 || prev.kind == 2;
  }
  def spacing(): int { return 1; }
}

class NoSpaceBeforePunct implements Rule {
  def applies(prev: Token, cur: Token): bool { return cur.kind == 1; }
  def spacing(): int { return 0; }
}

class DefaultSpace implements Rule {
  def applies(prev: Token, cur: Token): bool { return true; }
  def spacing(): int { return 1; }
}

object Main {
  static var rules: ArraySeq;
  static var tokens: ArraySeq;

  def setup(): void {
    var rules: ArraySeq = new ArraySeq(4);
    rules.add(new SpaceAroundKeyword());
    rules.add(new NoSpaceBeforePunct());
    rules.add(new DefaultSpace());
    Main.rules = rules;
    var tokens: ArraySeq = new ArraySeq(64);
    var x: int = 3;
    var i: int = 0;
    while (i < 300) {
      x = (x * 13 + 5) % 97;
      var kind: int = x & 3;
      tokens.add(new Token(kind, 1 + x % 9));
      i = i + 1;
    }
    Main.tokens = tokens;
  }

  def format(): int {
    var prev: Token = new Token(3, 0);
    var width: Box = new Box(0);
    var lines: Box = new Box(1);
    var prevBox: ArraySeq = new ArraySeq(1);
    prevBox.add(prev);
    Main.tokens.foreach(fun (t: Token): void {
      var p: Token = prevBox.get(0) as Token;
      var r: int = 0;
      var space: int = 1;
      while (r < Main.rules.length()) {
        var rule: Rule = Main.rules.get(r) as Rule;
        if (rule.applies(p, t)) { space = rule.spacing(); r = Main.rules.length(); }
        else { r = r + 1; }
      }
      t.spaceBefore = space;
      if (t.kind == 3 || width.value > 100) {
        lines.value = lines.value + 1;
        width.value = 0;
      } else {
        width.value = width.value + space + t.width;
      }
      prevBox.set(0, t);
    });
    return lines.value;
  }

  def run(): int {
    if (Main.rules == null) { Main.setup(); }
    var total: int = 0;
    var pass: int = 0;
    while (pass < 2) {
      total = total + Main.format();
      total = total + Main.tokens.sumBy(fun (t: Token): int => t.spaceBefore + t.width);
      pass = pass + 1;
    }
    return total;
  }
}
"""
