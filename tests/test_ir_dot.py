"""Dot rendering tests (structure of the output text)."""

from repro.core.calltree import make_root
from repro.core.params import InlinerParams
from repro.core.trials import discover_children
from repro.ir import annotate_frequencies, build_graph
from repro.ir.dot import calltree_to_dot, graph_to_dot
from repro.jit.compiler import CompileContext
from repro.opts.pipeline import OptimizationPipeline
from tests.helpers import run_static, shapes_program


class TestGraphDot:
    def test_blocks_and_edges_present(self):
        program = shapes_program()
        graph = build_graph(program.lookup_method("Main", "run"), program)
        annotate_frequencies(graph)
        dot = graph_to_dot(graph)
        assert dot.startswith('digraph "Main.run"')
        for block in graph.blocks:
            assert "B%d [label=" % block.id in dot
        assert '"T ' in dot and '"F ' in dot  # labeled If edges
        assert dot.rstrip().endswith("}")

    def test_quotes_escaped(self):
        program = shapes_program()
        graph = build_graph(program.lookup_method("Square", "area"), program)
        dot = graph_to_dot(graph)
        assert '\\"' not in dot or dot.count('"') % 2 == 0


class TestCallTreeDot:
    def test_kinds_and_edges(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        graph = build_graph(
            program.lookup_method("Main", "total"), program, interp.profiles
        )
        annotate_frequencies(graph)
        root = make_root(graph)
        context = CompileContext(
            program, interp.profiles, OptimizationPipeline(program), None
        )
        discover_children(root, context, InlinerParams())
        dot = calltree_to_dot(root)
        assert "root Main.total" in dot
        assert "P Shape.area" in dot
        assert "C Square.area" in dot or "C Circle.area" in dot
        assert "->" in dot
