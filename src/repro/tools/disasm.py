"""Dump bytecode, SSA IR or machine code for a minij method.

Examples::

    python -m repro.tools.disasm program.minij --method Main.run
    python -m repro.tools.disasm program.minij --method Main.run --form ir
    python -m repro.tools.disasm program.minij --method Main.run --form machine
    python -m repro.tools.disasm program.minij            # whole program
"""

import argparse

from repro.backend.lowering import lower_graph
from repro.bytecode.disassembler import disassemble_method, disassemble_program
from repro.ir import build_graph, format_graph
from repro.opts.pipeline import OptimizationPipeline
from repro.tools.common import compile_file, method_argument


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.tools.disasm", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("program", help="minij source file")
    parser.add_argument(
        "--method", type=method_argument, default=None,
        help="restrict to one method (Class.method); default: whole program",
    )
    parser.add_argument(
        "--form", choices=["bytecode", "ir", "ir-opt", "machine"],
        default="bytecode",
    )
    args = parser.parse_args(argv)

    program = compile_file(args.program)
    if args.method is None:
        print(disassemble_program(program))
        return 0
    class_name, method_name = args.method
    method = program.lookup_method(class_name, method_name)
    if args.form == "bytecode":
        print(disassemble_method(method))
        return 0
    graph = build_graph(method, program)
    if args.form in ("ir-opt", "machine"):
        OptimizationPipeline(program).run(graph)
    if args.form.startswith("ir"):
        print(format_graph(graph, include_frequency=True))
        return 0
    print(lower_graph(graph).listing())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
