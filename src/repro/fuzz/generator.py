"""Seeded random guest programs for differential fuzzing.

Two generation modes share one entry point, :func:`generate_case`:

- **bytecode mode** (:class:`BytecodeCase`) builds a program directly
  with :class:`~repro.bytecode.builder.MethodBuilder` from a small
  statement/expression AST.  The AST — not the finished bytecode — is
  the unit the shrinker edits, so every reduction step rebuilds and
  re-verifies the program.  The grammar covers the full integer ISA
  (with DIV/REM and over-width/negative shift edge cases drawn from an
  edge-constant pool), bounded loops, nested branches, int arrays,
  instance and static fields, virtual/interface dispatch over a fixed
  ``I`` / ``A`` / ``B extends A`` / ``C`` hierarchy, type tests, casts
  and bounded recursion;
- **minij mode** (:class:`MinijCase`) generates minij source text and
  compiles it through :mod:`repro.lang`, exercising the front end,
  trait dispatch and the stdlib-free language core.

Programs are verifier-clean by construction: expressions emit balanced
stack code, every local is initialized in a preamble before the
shrinkable statement list runs, and loops have constant trip counts.
Traps (division by zero, out-of-bounds, bad casts, null fields) are
*intentionally* generated at low probability — the oracle compares trap
kinds, not just values.
"""

import copy
import random

from repro.bytecode import MethodBuilder, Program, verify_program
from repro.bytecode.klass import FieldDef
from repro.bytecode.method import Method
from repro.bytecode.opcodes import Op
from repro.lang import compile_source
from repro.runtime.int64 import INT64_MAX, INT64_MIN
from repro.runtime.intrinsics import BUILTINS_CLASS, install_builtins

#: Constants that historically break JIT arithmetic: wrap boundaries,
#: shift-mask edges, powers of two of both signs, small divisors.
EDGE_CONSTANTS = [
    0, 1, 2, 3, 5, 7, 8, 15, 16, 63, 64, 65, 100,
    -1, -2, -3, -8, -16, -64,
    1 << 31, -(1 << 31), (1 << 62), -(1 << 62),
    INT64_MAX, INT64_MIN, INT64_MAX - 1, INT64_MIN + 1,
]

#: Shift amounts exercising the JVM's ``& 63`` mask.
SHIFT_CONSTANTS = [0, 1, 5, 31, 32, 62, 63, 64, 65, 127, 128, -1, -8, -63]

_ARITH_OPS = [Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR]
_CMP_OPS = [Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE]


# ---------------------------------------------------------------------------
# The miniature AST
# ---------------------------------------------------------------------------


class Const:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class LocalRef:
    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name


class Bin:
    __slots__ = ("op", "a", "b")

    def __init__(self, op, a, b):
        self.op = op
        self.a = a
        self.b = b


class Cmp:
    __slots__ = ("op", "a", "b")

    def __init__(self, op, a, b):
        self.op = op
        self.a = a
        self.b = b


class Neg:
    __slots__ = ("a",)

    def __init__(self, a):
        self.a = a


class CallS:
    """Static call to a generated helper (or intrinsic) on *owner*."""

    __slots__ = ("owner", "method", "args")

    def __init__(self, owner, method, args):
        self.owner = owner
        self.method = method
        self.args = args


class CallV:
    """Virtual/interface call; *recv* names a reference local."""

    __slots__ = ("declared", "method", "recv", "args")

    def __init__(self, declared, method, recv, args):
        self.declared = declared
        self.method = method
        self.recv = recv
        self.args = args


class ALoad:
    __slots__ = ("arr", "index")

    def __init__(self, arr, index):
        self.arr = arr
        self.index = index


class ALen:
    __slots__ = ("arr",)

    def __init__(self, arr):
        self.arr = arr


class FLoad:
    __slots__ = ("recv", "klass", "field")

    def __init__(self, recv, klass, field):
        self.recv = recv
        self.klass = klass
        self.field = field


class SLoad:
    __slots__ = ("klass", "field")

    def __init__(self, klass, field):
        self.klass = klass
        self.field = field


class InstOf:
    __slots__ = ("recv", "type_name")

    def __init__(self, recv, type_name):
        self.recv = recv
        self.type_name = type_name


class Assign:
    __slots__ = ("name", "expr")

    def __init__(self, name, expr):
        self.name = name
        self.expr = expr


class PrintS:
    __slots__ = ("expr",)

    def __init__(self, expr):
        self.expr = expr


class ExprS:
    """Evaluate an expression for its side effects and pop the result."""

    __slots__ = ("expr",)

    def __init__(self, expr):
        self.expr = expr


class AStore:
    __slots__ = ("arr", "index", "value")

    def __init__(self, arr, index, value):
        self.arr = arr
        self.index = index
        self.value = value


class FStore:
    __slots__ = ("recv", "klass", "field", "value")

    def __init__(self, recv, klass, field, value):
        self.recv = recv
        self.klass = klass
        self.field = field
        self.value = value


class SStore:
    __slots__ = ("klass", "field", "value")

    def __init__(self, klass, field, value):
        self.klass = klass
        self.field = field
        self.value = value


class IfS:
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond, then, els):
        self.cond = cond
        self.then = then
        self.els = els


class LoopS:
    """``for var in 0..count`` with a constant trip count."""

    __slots__ = ("var", "count", "body")

    def __init__(self, var, count, body):
        self.var = var
        self.count = count
        self.body = body


class CastS:
    """``CHECKCAST`` of a reference local (result discarded)."""

    __slots__ = ("recv", "type_name")

    def __init__(self, recv, type_name):
        self.recv = recv
        self.type_name = type_name


# ---------------------------------------------------------------------------
# Emission: AST -> MethodBuilder
# ---------------------------------------------------------------------------


def _emit_expr(b, env, expr):
    t = type(expr)
    if t is Const:
        b.const(expr.value)
    elif t is LocalRef:
        b.load(env[expr.name])
    elif t is Bin:
        _emit_expr(b, env, expr.a)
        _emit_expr(b, env, expr.b)
        b.emit(expr.op)
    elif t is Cmp:
        _emit_expr(b, env, expr.a)
        _emit_expr(b, env, expr.b)
        b.emit(expr.op)
    elif t is Neg:
        _emit_expr(b, env, expr.a)
        b.neg()
    elif t is CallS:
        for arg in expr.args:
            _emit_expr(b, env, arg)
        b.invokestatic(expr.owner, expr.method)
    elif t is CallV:
        b.load(env[expr.recv])
        for arg in expr.args:
            _emit_expr(b, env, arg)
        if expr.declared == "I":
            b.invokeinterface(expr.declared, expr.method)
        else:
            b.invokevirtual(expr.declared, expr.method)
    elif t is ALoad:
        b.load(env[expr.arr])
        _emit_expr(b, env, expr.index)
        b.aload("int")
    elif t is ALen:
        b.load(env[expr.arr])
        b.arraylen()
    elif t is FLoad:
        b.load(env[expr.recv])
        b.getfield(expr.klass, expr.field)
    elif t is SLoad:
        b.getstatic(expr.klass, expr.field)
    elif t is InstOf:
        b.load(env[expr.recv])
        b.instanceof(expr.type_name)
    else:
        raise TypeError("unknown expression %r" % (expr,))


def _emit_stmt(b, env, stmt):
    t = type(stmt)
    if t is Assign:
        _emit_expr(b, env, stmt.expr)
        b.store(env[stmt.name])
    elif t is PrintS:
        _emit_expr(b, env, stmt.expr)
        b.invokestatic(BUILTINS_CLASS, "print")
    elif t is ExprS:
        _emit_expr(b, env, stmt.expr)
        b.pop()
    elif t is AStore:
        b.load(env[stmt.arr])
        _emit_expr(b, env, stmt.index)
        _emit_expr(b, env, stmt.value)
        b.astore()
    elif t is FStore:
        b.load(env[stmt.recv])
        _emit_expr(b, env, stmt.value)
        b.putfield(stmt.klass, stmt.field)
    elif t is SStore:
        _emit_expr(b, env, stmt.value)
        b.putstatic(stmt.klass, stmt.field)
    elif t is IfS:
        then_label = b.new_label()
        end_label = b.new_label()
        _emit_expr(b, env, stmt.cond)
        b.if_true(then_label)
        for inner in stmt.els:
            _emit_stmt(b, env, inner)
        b.goto(end_label)
        b.place(then_label)
        for inner in stmt.then:
            _emit_stmt(b, env, inner)
        b.place(end_label)
    elif t is LoopS:
        loop_label = b.new_label()
        end_label = b.new_label()
        slot = env[stmt.var]
        b.const(0).store(slot)
        b.place(loop_label)
        b.load(slot).const(stmt.count).ge().if_true(end_label)
        for inner in stmt.body:
            _emit_stmt(b, env, inner)
        b.load(slot).const(1).add().store(slot)
        b.goto(loop_label)
        b.place(end_label)
    elif t is CastS:
        b.load(env[stmt.recv])
        b.checkcast(stmt.type_name)
        b.pop()
    else:
        raise TypeError("unknown statement %r" % (stmt,))


def _referenced_names(stmts, ret):
    """Every local name a statement forest + return expression mentions."""
    names = set()

    def walk_expr(expr):
        t = type(expr)
        if t is LocalRef:
            names.add(expr.name)
        elif t in (Bin, Cmp):
            walk_expr(expr.a)
            walk_expr(expr.b)
        elif t is Neg:
            walk_expr(expr.a)
        elif t in (CallS, CallV):
            for arg in expr.args:
                walk_expr(arg)
        elif t is ALoad:
            walk_expr(expr.index)

    def walk_stmts(stmts):
        for stmt in stmts:
            t = type(stmt)
            if t is Assign:
                names.add(stmt.name)
                walk_expr(stmt.expr)
            elif t in (PrintS, ExprS):
                walk_expr(stmt.expr)
            elif t is AStore:
                walk_expr(stmt.index)
                walk_expr(stmt.value)
            elif t in (FStore, SStore):
                walk_expr(stmt.value)
            elif t is IfS:
                walk_expr(stmt.cond)
                walk_stmts(stmt.then)
                walk_stmts(stmt.els)
            elif t is LoopS:
                names.add(stmt.var)
                walk_stmts(stmt.body)

    walk_stmts(stmts)
    walk_expr(ret)
    return names


def _alloc_missing_ints(builder, env, spec):
    """Give every yet-unbound int name a zero-initialized slot.

    Loop counters (``i0``..) enter the generator's context lazily, so
    they are not in ``spec.temps``; this keeps the emitted code free of
    reads from uninitialized locals no matter what the shrinker deletes.
    """
    for name in sorted(_referenced_names(spec.stmts, spec.ret)):
        if name not in env:
            env[name] = builder.alloc_local()
            builder.const(0).store(env[name])


# ---------------------------------------------------------------------------
# Program specs
# ---------------------------------------------------------------------------


class MethodSpec:
    """One generated method: int params, int temps, statements, return."""

    __slots__ = ("name", "params", "temps", "stmts", "ret")

    def __init__(self, name, params, temps, stmts, ret):
        self.name = name
        self.params = list(params)  # parameter names, int-typed
        self.temps = list(temps)  # [(name, initial constant)]
        self.stmts = list(stmts)
        self.ret = ret


class BytecodeCase:
    """A generated bytecode program, rebuildable from its AST.

    The class hierarchy is fixed in shape (interface ``I`` with ``get``
    and ``step``; ``A implements I``; ``B extends A`` overriding
    ``get``; ``C implements I``) while every method body, field
    initializer and ``Main`` statement is generated.  ``build()`` is a
    pure function of the spec — the shrinker mutates the spec and
    rebuilds.
    """

    kind = "bytecode"
    ENTRY = ("Main", "main")

    def __init__(self, seed):
        self.seed = seed
        self.helpers = []  # list of MethodSpec (static, on Main)
        self.rec_update = None  # expr over ["n", "a"] for the recursion helper
        self.methods = {}  # "A.get" etc. -> MethodSpec (instance)
        self.field_inits = []  # [(local, klass, field, constant)]
        self.array_len = 8
        self.null_local = False  # when True, local "rn" stays null
        self.main = None  # MethodSpec for static main()

    # -- building ---------------------------------------------------------

    def build(self):
        program = Program()
        install_builtins(program)

        iface = program.define_class("I", is_interface=True)
        iface.add_method(Method("get", [], "int", is_abstract=True))
        iface.add_method(Method("step", ["int"], "int", is_abstract=True))

        a = program.define_class("A", interfaces=["I"])
        a.add_field(FieldDef("x", "int"))
        b = program.define_class("B", superclass="A")
        b.add_field(FieldDef("y", "int"))
        c = program.define_class("C", interfaces=["I"])
        c.add_field(FieldDef("z", "int"))

        for key, spec in sorted(self.methods.items()):
            owner, _ = key.split(".")
            holder = {"A": a, "B": b, "C": c}[owner]
            holder.add_method(self._build_instance_method(spec))

        main = program.define_class("Main", is_abstract=True)
        main.add_field(FieldDef("s0", "int", is_static=True))
        main.add_field(FieldDef("s1", "int", is_static=True))
        for spec in self.helpers:
            main.add_method(self._build_static_method(spec))
        if self.rec_update is not None:
            main.add_method(self._build_rec())
        main.add_method(self._build_main())
        verify_program(program)
        return program, self.ENTRY

    def _build_instance_method(self, spec):
        b = MethodBuilder(spec.name, ["int"] * len(spec.params), "int")
        env = {"this": 0}
        for index, pname in enumerate(spec.params):
            env[pname] = 1 + index
        for tname, init in spec.temps:
            env[tname] = b.alloc_local()
            b.const(init).store(env[tname])
        _alloc_missing_ints(b, env, spec)
        for stmt in spec.stmts:
            _emit_stmt(b, env, stmt)
        _emit_expr(b, env, spec.ret)
        b.retv()
        return b.build()

    def _build_static_method(self, spec):
        b = MethodBuilder(
            spec.name, ["int"] * len(spec.params), "int", is_static=True
        )
        env = {}
        for index, pname in enumerate(spec.params):
            env[pname] = index
        for tname, init in spec.temps:
            env[tname] = b.alloc_local()
            b.const(init).store(env[tname])
        _alloc_missing_ints(b, env, spec)
        for stmt in spec.stmts:
            _emit_stmt(b, env, stmt)
        _emit_expr(b, env, spec.ret)
        b.retv()
        return b.build()

    def _build_rec(self):
        b = MethodBuilder("rec", ["int", "int"], "int", is_static=True)
        env = {"n": 0, "a": 1}
        base = b.new_label()
        b.load(0).const(0).le().if_true(base)
        b.load(0).const(1).sub()
        _emit_expr(b, env, self.rec_update)
        b.invokestatic("Main", "rec").retv()
        b.place(base).load(1).retv()
        return b.build()

    def _build_main(self):
        spec = self.main
        b = MethodBuilder("main", [], "int", is_static=True)
        env = {}
        # Non-shrinkable preamble: every local the body may touch is
        # initialized here, so no statement removal can expose an
        # uninitialized slot to the SSA builder.
        for name, klass in (("ra", "A"), ("rb", "B"), ("rc", "C")):
            env[name] = b.alloc_local()
            b.new(klass).store(env[name])
        env["rn"] = b.alloc_local()
        if self.null_local:
            b.null().store(env["rn"])
        else:
            b.new("A").store(env["rn"])
        env["arr"] = b.alloc_local()
        b.const(self.array_len).newarray("int").store(env["arr"])
        for local, klass, field, value in self.field_inits:
            b.load(env[local]).const(value).putfield(klass, field)
        for tname, init in spec.temps:
            env[tname] = b.alloc_local()
            b.const(init).store(env[tname])
        _alloc_missing_ints(b, env, spec)
        for stmt in spec.stmts:
            _emit_stmt(b, env, stmt)
        _emit_expr(b, env, spec.ret)
        b.retv()
        return b.build()

    # -- shrinking support ------------------------------------------------

    def size(self):
        total = 0
        for spec in self._all_specs():
            total += _forest_size(spec.stmts) + _tree_size(spec.ret)
        if self.rec_update is not None:
            total += _tree_size(self.rec_update)
        return total

    def _all_specs(self):
        specs = list(self.helpers)
        specs.extend(spec for _, spec in sorted(self.methods.items()))
        specs.append(self.main)
        return specs

    def shrink_candidates(self):
        """Yield strictly smaller copies of this case (see reduce.py)."""
        for index in range(len(self.helpers) - 1, -1, -1):
            clone = copy.deepcopy(self)
            del clone.helpers[index]
            yield clone
        if self.rec_update is not None and _tree_size(self.rec_update) > 1:
            clone = copy.deepcopy(self)
            clone.rec_update = LocalRef("a")
            yield clone
        spec_keys = (
            [("helper", i) for i in range(len(self.helpers))]
            + [("method", key) for key in sorted(self.methods)]
            + [("main", None)]
        )
        for key in spec_keys:
            spec = self._spec_for(key)
            for mutated in _shrink_stmt_forest(spec.stmts):
                clone = copy.deepcopy(self)
                self._spec_for(key, clone).stmts = mutated
                yield clone
            for mutated in _shrink_expr(spec.ret):
                clone = copy.deepcopy(self)
                self._spec_for(key, clone).ret = mutated
                yield clone

    def _spec_for(self, key, case=None):
        case = case if case is not None else self
        kind, value = key
        if kind == "helper":
            return case.helpers[value]
        if kind == "method":
            return case.methods[value]
        return case.main

    def description(self):
        return "bytecode seed=%d size=%d" % (self.seed, self.size())


def _tree_size(expr):
    t = type(expr)
    if t in (Const, LocalRef, SLoad, ALen, FLoad, InstOf):
        return 1
    if t in (Bin, Cmp):
        return 1 + _tree_size(expr.a) + _tree_size(expr.b)
    if t is Neg:
        return 1 + _tree_size(expr.a)
    if t in (CallS, CallV):
        return 1 + sum(_tree_size(a) for a in expr.args)
    if t is ALoad:
        return 1 + _tree_size(expr.index)
    return 1


def _forest_size(stmts):
    total = 0
    for stmt in stmts:
        t = type(stmt)
        total += 1
        if t is IfS:
            total += _tree_size(stmt.cond)
            total += _forest_size(stmt.then) + _forest_size(stmt.els)
        elif t is LoopS:
            # A multi-trip loop counts one extra unit so reducing the
            # trip count to 1 is a strictly-shrinking move.
            total += _forest_size(stmt.body) + (1 if stmt.count > 1 else 0)
        elif t in (Assign, PrintS, ExprS):
            total += _tree_size(stmt.expr)
        elif t is AStore:
            total += _tree_size(stmt.index) + _tree_size(stmt.value)
        elif t in (FStore, SStore):
            total += _tree_size(stmt.value)
    return total


def _shrink_expr(expr):
    """Yield strictly smaller replacement expressions."""
    if _tree_size(expr) <= 1:
        return
    yield Const(0)
    yield Const(1)
    t = type(expr)
    if t in (Bin, Cmp):
        yield expr.a
        yield expr.b
        for smaller in _shrink_expr(expr.a):
            yield type(expr)(expr.op, smaller, expr.b)
        for smaller in _shrink_expr(expr.b):
            yield type(expr)(expr.op, expr.a, smaller)
    elif t is Neg:
        yield expr.a
    elif t in (CallS, CallV):
        for arg in expr.args:
            # Only multi-node arguments: zeroing a LocalRef would keep
            # the candidate the same size, breaking the reducer's
            # strictly-shrinking contract.
            if _tree_size(arg) > 1:
                args = [Const(0) if a is arg else a for a in expr.args]
                if t is CallS:
                    yield CallS(expr.owner, expr.method, args)
                else:
                    yield CallV(expr.declared, expr.method, expr.recv, args)
    elif t is ALoad:
        for smaller in _shrink_expr(expr.index):
            yield ALoad(expr.arr, smaller)


def _shrink_stmt_forest(stmts):
    """Yield strictly smaller copies of a statement list."""
    for index in range(len(stmts) - 1, -1, -1):
        clone = list(stmts)
        del clone[index]
        yield clone
    for index, stmt in enumerate(stmts):
        t = type(stmt)
        if t is IfS:
            if stmt.then:
                yield stmts[:index] + stmt.then + stmts[index + 1 :]
            if stmt.els:
                yield stmts[:index] + stmt.els + stmts[index + 1 :]
        elif t is LoopS:
            if stmt.count > 1:
                clone = list(stmts)
                clone[index] = LoopS(stmt.var, 1, copy.deepcopy(stmt.body))
                yield clone
            if stmt.body:
                yield stmts[:index] + stmt.body + stmts[index + 1 :]
        elif t in (Assign, PrintS, ExprS):
            for smaller in _shrink_expr(stmt.expr):
                clone = list(stmts)
                clone[index] = t(stmt.name, smaller) if t is Assign else t(smaller)
                yield clone
        elif t is AStore:
            for smaller in _shrink_expr(stmt.value):
                clone = list(stmts)
                clone[index] = AStore(stmt.arr, copy.deepcopy(stmt.index), smaller)
                yield clone
        for nested, rebuild in _nested_forests(stmts, index):
            for mutated in _shrink_stmt_forest(nested):
                yield rebuild(mutated)


def _nested_forests(stmts, index):
    """Yield (inner stmt list, rebuild(list)->outer list) pairs."""
    stmt = stmts[index]
    t = type(stmt)
    if t is IfS:

        def rebuild_then(inner, stmts=stmts, index=index, stmt=stmt):
            clone = list(stmts)
            clone[index] = IfS(
                copy.deepcopy(stmt.cond), inner, copy.deepcopy(stmt.els)
            )
            return clone

        def rebuild_els(inner, stmts=stmts, index=index, stmt=stmt):
            clone = list(stmts)
            clone[index] = IfS(
                copy.deepcopy(stmt.cond), copy.deepcopy(stmt.then), inner
            )
            return clone

        yield stmt.then, rebuild_then
        yield stmt.els, rebuild_els
    elif t is LoopS:

        def rebuild_body(inner, stmts=stmts, index=index, stmt=stmt):
            clone = list(stmts)
            clone[index] = LoopS(stmt.var, stmt.count, inner)
            return clone

        yield stmt.body, rebuild_body


# ---------------------------------------------------------------------------
# The random generator (bytecode mode)
# ---------------------------------------------------------------------------


class _Context:
    """What a generated expression may reference at one program point."""

    __slots__ = ("ints", "muts", "refs", "arrays", "this_fields", "calls")

    def __init__(self, ints, refs=(), arrays=(), this_fields=(), calls=()):
        self.ints = list(ints)  # readable int locals
        # Assignable int locals.  Loop counters join ``ints`` only:
        # letting a loop body overwrite its own counter is the classic
        # non-terminating-generator bug.
        self.muts = list(ints)
        self.refs = list(refs)  # [(local, static class)]
        self.arrays = list(arrays)
        self.this_fields = list(this_fields)  # [(class, field)]
        self.calls = list(calls)  # [("static", owner, name, argc) | ...]


class _Generator:
    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.seed = seed
        self._loop_seq = 0  # unique loop-counter names (see stmt())
        # Roughly one case in five is type-check heavy: instanceof
        # leaves and cast statements get several times their normal
        # weight and the maybe-null receiver joins the pool more
        # often — the shapes profile-guided type-check speculation
        # (the jit-typespec oracle config) feeds on.
        self.typecheck_heavy = self.rng.random() < 0.2

    def constant(self):
        rng = self.rng
        if rng.random() < 0.55:
            return rng.choice(EDGE_CONSTANTS)
        return rng.randint(-60, 60)

    def expr(self, ctx, depth):
        rng = self.rng
        if depth <= 0:
            return self.leaf(ctx)
        roll = rng.random()
        if roll < 0.38:
            op = rng.choice(_ARITH_OPS)
            return Bin(op, self.expr(ctx, depth - 1), self.expr(ctx, depth - 1))
        if roll < 0.50:
            return self.div_rem(ctx, depth)
        if roll < 0.60:
            return self.shift(ctx, depth)
        if roll < 0.68:
            return Cmp(
                rng.choice(_CMP_OPS),
                self.expr(ctx, depth - 1),
                self.expr(ctx, depth - 1),
            )
        if roll < 0.73:
            return Neg(self.expr(ctx, depth - 1))
        if roll < 0.83 and ctx.calls:
            return self.call(ctx, depth)
        if roll < 0.90 and ctx.arrays:
            return ALoad(rng.choice(ctx.arrays), self.index_expr(ctx, depth))
        return self.leaf(ctx)

    def div_rem(self, ctx, depth):
        rng = self.rng
        op = rng.choice([Op.DIV, Op.REM])
        divisor = self.expr(ctx, depth - 1)
        if rng.random() < 0.88:
            # OR 1 makes the divisor odd, hence non-zero — the common
            # "guarded" case; the remaining 12% may trap, on purpose.
            divisor = Bin(Op.OR, divisor, Const(1))
        return Bin(op, self.expr(ctx, depth - 1), divisor)

    def shift(self, ctx, depth):
        rng = self.rng
        op = rng.choice([Op.SHL, Op.SHR])
        if rng.random() < 0.6:
            amount = Const(rng.choice(SHIFT_CONSTANTS))
        else:
            amount = self.expr(ctx, depth - 1)
        return Bin(op, self.expr(ctx, depth - 1), amount)

    def index_expr(self, ctx, depth):
        rng = self.rng
        index = self.expr(ctx, max(0, depth - 1))
        if rng.random() < 0.88:
            # Power-of-two array length: AND masks the index in range.
            return Bin(Op.AND, index, Const(7))
        return index

    def call(self, ctx, depth):
        rng = self.rng
        kind = rng.choice(ctx.calls)
        if kind[0] == "static":
            _, owner, name, argc = kind
            if name == "rec":
                args = [Const(rng.randint(0, 10)), self.expr(ctx, depth - 1)]
            else:
                args = [self.expr(ctx, depth - 1) for _ in range(argc)]
            return CallS(owner, name, args)
        _, declared, name, argc = kind
        recv, _klass = rng.choice(ctx.refs)
        args = [self.expr(ctx, depth - 1) for _ in range(argc)]
        return CallV(declared, name, recv, args)

    def leaf(self, ctx):
        rng = self.rng
        roll = rng.random()
        if roll < 0.35 or not ctx.ints:
            return Const(self.constant())
        if roll < 0.70:
            return LocalRef(rng.choice(ctx.ints))
        if roll < 0.78 and ctx.this_fields:
            klass, field = rng.choice(ctx.this_fields)
            return FLoad("this", klass, field)
        if roll < 0.80 and ctx.refs:
            recv, klass = rng.choice(ctx.refs)
            field = {"A": "x", "B": "y", "C": "z"}[klass]
            return FLoad(recv, klass, field)
        if roll < (0.92 if self.typecheck_heavy else 0.84) and ctx.refs:
            recv, _klass = rng.choice(ctx.refs)
            return InstOf(recv, rng.choice(["A", "B", "C", "I"]))
        if roll < 0.88 and ctx.arrays:
            return ALen(rng.choice(ctx.arrays))
        if roll < 0.93:
            return SLoad("Main", rng.choice(["s0", "s1"]))
        return LocalRef(rng.choice(ctx.ints))

    def stmt(self, ctx, depth, budget):
        rng = self.rng
        roll = rng.random()
        if roll < 0.34:
            return Assign(rng.choice(ctx.muts), self.expr(ctx, depth))
        if roll < 0.44:
            return PrintS(self.expr(ctx, depth - 1))
        if roll < 0.52 and ctx.arrays:
            return AStore(
                rng.choice(ctx.arrays),
                self.index_expr(ctx, depth),
                self.expr(ctx, depth - 1),
            )
        if roll < 0.60 and ctx.refs:
            recv, klass = rng.choice(ctx.refs)
            field = {"A": "x", "B": "y", "C": "z"}[klass]
            return FStore(recv, klass, field, self.expr(ctx, depth - 1))
        if roll < 0.66:
            return SStore(
                "Main", rng.choice(["s0", "s1"]), self.expr(ctx, depth - 1)
            )
        if roll < 0.78 and budget > 2:
            cond = self.cond(ctx, depth - 1)
            then = self.stmts(ctx, depth - 1, budget // 2)
            els = self.stmts(ctx, depth - 1, budget // 3) if rng.random() < 0.6 else []
            return IfS(cond, then, els)
        if roll < (0.82 if self.typecheck_heavy else 0.88) and budget > 2:
            # A fresh name per loop: nested loops sharing a counter
            # (the inner resetting the outer's) would never terminate.
            var = "i%d" % self._loop_seq
            self._loop_seq += 1
            ctx.ints.append(var)
            count = rng.choice([1, 2, 3, 4, 7, 8])
            return LoopS(var, count, self.stmts(ctx, depth - 1, budget // 2))
        if roll < 0.92 and ctx.refs:
            recv, klass = rng.choice(ctx.refs)
            safe = {"A": ["A", "I"], "B": ["A", "B", "I"], "C": ["C", "I"]}[klass]
            if rng.random() < 0.08:
                return CastS(recv, rng.choice(["A", "B", "C"]))
            return CastS(recv, rng.choice(safe))
        if roll < 0.97 and ctx.calls:
            return ExprS(self.call(ctx, depth))
        return Assign(rng.choice(ctx.muts), self.expr(ctx, depth))

    def cond(self, ctx, depth):
        rng = self.rng
        if rng.random() < 0.7:
            return Cmp(
                rng.choice(_CMP_OPS),
                self.expr(ctx, depth),
                self.expr(ctx, depth),
            )
        return Bin(Op.AND, self.expr(ctx, depth), Const(1))

    def stmts(self, ctx, depth, budget):
        return [
            self.stmt(ctx, depth, budget)
            for _ in range(self.rng.randint(1, max(1, budget)))
        ]

    # -- whole-case assembly ----------------------------------------------

    def generate(self):
        rng = self.rng
        case = BytecodeCase(self.seed)
        case.null_local = rng.random() < 0.2
        case.array_len = 8

        # Instance methods: get() on A, B, C and step(v) on A and C.
        for owner, field in (("A", "x"), ("B", "y"), ("C", "z")):
            fields = [(owner, field)]
            if owner == "B":
                fields.append(("A", "x"))
            ctx = _Context(ints=[], this_fields=fields)
            case.methods["%s.get" % owner] = MethodSpec(
                "get", [], [], [], self.expr(ctx, 2)
            )
        for owner, field in (("A", "x"), ("C", "z")):
            ctx = _Context(ints=["v"], this_fields=[(owner, field)])
            stmts = []
            if rng.random() < 0.7:
                stmts.append(
                    FStore("this", owner, field, self.expr(ctx, 2))
                )
            case.methods["%s.step" % owner] = MethodSpec(
                "step", ["v"], [], stmts, self.expr(ctx, 2)
            )

        # Static helpers (each may call earlier helpers and rec).
        calls = []
        if rng.random() < 0.8:
            ctx = _Context(ints=["n", "a"])
            case.rec_update = self.expr(ctx, 2)
            calls.append(("static", "Main", "rec", 2))
        helper_count = rng.randint(1, 3)
        for index in range(helper_count):
            name = "h%d" % index
            ctx = _Context(ints=["p0", "p1", "t0"], calls=list(calls))
            temps = [("t0", self.constant())]
            stmts = self.stmts(ctx, 2, 3)
            case.helpers.append(
                MethodSpec(name, ["p0", "p1"], temps, stmts, self.expr(ctx, 2))
            )
            calls.append(("static", "Main", name, 2))

        # Field initializers for the allocated receivers.
        for local, klass, field in (
            ("ra", "A", "x"),
            ("rb", "B", "x"),
            ("rb", "B", "y"),
            ("rc", "C", "z"),
        ):
            case.field_inits.append((local, klass, field, self.constant()))

        # Main body.
        refs = [("ra", "A"), ("rb", "B"), ("rc", "C")]
        if rng.random() < (0.5 if self.typecheck_heavy else 0.25):
            refs.append(("rn", "A"))  # may be null: NPE coverage
        virtuals = [
            ("virtual", "I", "get", 0),
            ("virtual", "I", "step", 1),
            ("virtual", "A", "get", 0),
        ]
        ctx = _Context(
            ints=["acc", "t0", "t1"],
            refs=refs,
            arrays=["arr"],
            calls=calls + virtuals,
        )
        temps = [("acc", self.constant()), ("t0", self.constant()), ("t1", self.constant())]
        stmts = self.stmts(ctx, 3, rng.randint(4, 9))
        ret = Bin(Op.ADD, LocalRef("acc"), self.expr(ctx, 2))
        case.main = MethodSpec("main", [], temps, stmts, ret)
        return case


# ---------------------------------------------------------------------------
# minij mode
# ---------------------------------------------------------------------------

_MINIJ_TEMPLATE = """\
trait Fn {
  def apply(v: int): int;
}
class Adder implements Fn {
  var bias: int;
  def init(b: int): void { this.bias = b; }
  def apply(v: int): int { return v + this.bias; }
}
class Scaler implements Fn {
  var k: int;
  def init(k: int): void { this.k = k; }
  def apply(v: int): int { return v * this.k - this.k / (v | 1); }
}
object Main {
  def helper(a: int, b: int): int {
    %(helper_body)s
  }
  def rec(n: int, a: int): int {
    if (n <= 0) { return a; }
    return Main.rec(n - 1, %(rec_expr)s);
  }
  def run(): int {
    var f: Fn = new Adder(%(c0)d);
    var g: Fn = new Scaler(%(c1)d);
    var a: int = %(a0)d;
    var b: int = %(b0)d;
    %(stmts)s
    return a * 31 + b + f.apply(a) - g.apply(b);
  }
}
"""

_MINIJ_EXPRS = [
    "a + b", "a - b * 3", "a * %(k)d", "b %% 7 + 1", "(a & b) | %(k)d",
    "a << %(s)d", "b >> %(s)d", "a ^ b", "a / (b | 1)",
    "Main.helper(a, b)", "Main.rec(%(d)d, a)", "f.apply(b)", "g.apply(a)",
    "0 - a",
]

_MINIJ_CONDS = [
    "a < b", "a == b", "a > %(k)d", "(a & 1) == 0", "b != 0", "a >= 0 - %(k)d",
]


class MinijCase:
    """A generated minij source program (front-end + JIT coverage)."""

    kind = "minij"
    ENTRY = ("Main", "run")

    def __init__(self, seed, params, stmts):
        self.seed = seed
        self.params = dict(params)
        self.stmts = list(stmts)

    def build(self):
        program = compile_source(self.source())
        return program, self.ENTRY

    def source(self):
        values = dict(self.params)
        values["stmts"] = "\n    ".join(self.stmts)
        return _MINIJ_TEMPLATE % values

    def size(self):
        return len(self.stmts)

    def shrink_candidates(self):
        for index in range(len(self.stmts) - 1, -1, -1):
            clone = list(self.stmts)
            del clone[index]
            yield MinijCase(self.seed, self.params, clone)

    def description(self):
        return "minij seed=%d stmts=%d" % (self.seed, len(self.stmts))


def _minij_expr(rng):
    template = rng.choice(_MINIJ_EXPRS)
    return template % {
        "k": rng.choice([1, 2, 3, 5, 8, 16, 63]),
        "s": rng.choice([0, 1, 5, 31, 63, 64, 65]),
        "d": rng.randint(0, 8),
    }


def _generate_minij(seed):
    rng = random.Random(seed ^ 0x6D696E69)
    params = {
        "c0": rng.randint(-9, 9),
        "c1": rng.choice([2, 3, -2, 7, 16]),
        "a0": rng.randint(-30, 30),
        "b0": rng.randint(1, 30),
        "helper_body": "return a * %d - b %% %d;"
        % (rng.choice([2, 3, 5, -4]), rng.choice([3, 5, 7])),
        "rec_expr": "a + n * %d" % rng.choice([1, 2, 7, -3]),
    }
    stmts = []
    for index in range(rng.randint(3, 8)):
        kind = rng.randint(0, 3)
        expr = _minij_expr(rng)
        cond = rng.choice(_MINIJ_CONDS) % {"k": rng.randint(0, 12)}
        if kind == 0:
            stmts.append("a = %s;" % expr)
        elif kind == 1:
            stmts.append("b = %s;" % expr)
        elif kind == 2:
            stmts.append(
                "if (%s) { a = %s; } else { b = b + %d; }"
                % (cond, expr, rng.randint(1, 4))
            )
        else:
            stmts.append(
                "var i%d: int = 0; while (i%d < %d) "
                "{ a = a + (%s); i%d = i%d + 1; }"
                % (index, index, rng.randint(1, 9), expr, index, index)
            )
    return MinijCase(seed, params, stmts)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def generate_case(seed, mode=None):
    """Generate one fuzz case.  *mode* forces ``"bytecode"``/``"minij"``;
    by default roughly one case in four is minij-sourced."""
    if mode is None:
        mode = "minij" if random.Random(seed ^ 0xABCD).random() < 0.25 else "bytecode"
    if mode == "minij":
        return _generate_minij(seed)
    return _Generator(seed).generate()
