"""Tests for VM state, values and intrinsics."""

import pytest

from repro.bytecode.klass import FieldDef
from repro.errors import TrapError
from repro.runtime import VMState, install_builtins
from repro.runtime.intrinsics import intrinsic_function
from repro.runtime.values import ArrayRef, ObjRef, default_value, dynamic_type_name
from tests.helpers import fresh_program


class TestValues:
    def test_object_allocation_defaults(self):
        program = fresh_program()
        klass = program.define_class("P")
        klass.add_field(FieldDef("x", "int"))
        klass.add_field(FieldDef("next", "P"))
        vm = VMState(program)
        obj = vm.allocate("P")
        assert obj.fields == {"x": 0, "next": None}
        assert vm.allocation_count == 1

    def test_inherited_fields_initialized(self):
        program = fresh_program()
        base = program.define_class("B")
        base.add_field(FieldDef("a", "int"))
        sub = program.define_class("S", superclass="B")
        sub.add_field(FieldDef("b", "int"))
        vm = VMState(program)
        assert set(vm.allocate("S").fields) == {"a", "b"}

    def test_array_defaults(self):
        vm = VMState(fresh_program())
        ints = vm.allocate_array("int", 3)
        refs = vm.allocate_array("Object", 2)
        assert ints.data == [0, 0, 0]
        assert refs.data == [None, None]
        assert ints.type_name == "int[]"
        assert len(refs) == 2

    def test_dynamic_type_names(self):
        assert dynamic_type_name(None) is None
        assert dynamic_type_name(5) == "int"
        assert dynamic_type_name(ObjRef("A", {})) == "A"
        assert dynamic_type_name(ArrayRef("int", 1)) == "int[]"

    def test_default_value(self):
        assert default_value("int") == 0
        assert default_value("Foo") is None


class TestStatics:
    def test_static_roundtrip(self):
        program = fresh_program()
        klass = program.define_class("G")
        klass.add_field(FieldDef("counter", "int", is_static=True))
        vm = VMState(program)
        assert vm.get_static("G", "counter") == 0
        vm.put_static("G", "counter", 41)
        assert vm.get_static("G", "counter") == 41

    def test_static_resolved_through_subclass(self):
        program = fresh_program()
        base = program.define_class("Base")
        base.add_field(FieldDef("shared", "int", is_static=True))
        program.define_class("Sub", superclass="Base")
        vm = VMState(program)
        vm.put_static("Sub", "shared", 5)
        assert vm.get_static("Base", "shared") == 5

    def test_fresh_vm_rezeroes_statics(self):
        program = fresh_program()
        klass = program.define_class("G")
        klass.add_field(FieldDef("c", "int", is_static=True))
        vm1 = VMState(program)
        vm1.put_static("G", "c", 99)
        assert VMState(program).get_static("G", "c") == 0


class TestRandomAndOutput:
    def test_deterministic_per_seed(self):
        program = fresh_program()
        a = VMState(program, seed=1)
        b = VMState(program, seed=1)
        c = VMState(program, seed=2)
        seq_a = [a.next_random() % 1000 for _ in range(5)]
        seq_b = [b.next_random() % 1000 for _ in range(5)]
        seq_c = [c.next_random() % 1000 for _ in range(5)]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_reseed_replays(self):
        vm = VMState(fresh_program(), seed=3)
        first = vm.next_random()
        vm.reseed(3)
        assert vm.next_random() == first

    def test_output_checksum_order_sensitive(self):
        vm1 = VMState(fresh_program())
        vm2 = VMState(fresh_program())
        vm1.output.extend([1, 2])
        vm2.output.extend([2, 1])
        assert vm1.output_checksum() != vm2.output_checksum()


class TestIntrinsics:
    def test_install_is_idempotent(self):
        program = fresh_program()
        first = program.klass("Builtins")
        assert install_builtins(program) is first

    def test_print_appends_output(self):
        vm = VMState(fresh_program())
        intrinsic_function("print")(vm, 42)
        assert vm.output == [42]

    def test_abs_min_max(self):
        vm = VMState(fresh_program())
        assert intrinsic_function("abs")(vm, -4) == 4
        assert intrinsic_function("imin")(vm, 2, 9) == 2
        assert intrinsic_function("imax")(vm, 2, 9) == 9

    def test_rand_bound(self):
        vm = VMState(fresh_program())
        for _ in range(50):
            assert 0 <= intrinsic_function("rand")(vm, 7) < 7
        with pytest.raises(TrapError):
            intrinsic_function("rand")(vm, 0)

    def test_ticks_monotone(self):
        vm = VMState(fresh_program())
        ticks = intrinsic_function("ticks")
        assert ticks(vm) < ticks(vm)
