"""Graphviz (dot) rendering of IR graphs and call trees.

Graal users look at graphs in IGV; the closest lightweight equivalent
is a dot dump. These functions produce self-contained ``digraph`` text
(no graphviz dependency — callers run ``dot -Tsvg`` themselves).
"""

from repro.ir import nodes as n


def _escape(text):
    return str(text).replace('"', '\\"')


def graph_to_dot(graph, include_frequency=True):
    """Render an IR graph: one record per block, CFG edges between."""
    lines = [
        'digraph "%s" {' % _escape(graph.name),
        "  node [shape=box, fontname=monospace, fontsize=9];",
    ]
    for block in graph.blocks:
        rows = []
        for phi in block.phis:
            rows.append(
                "v%d = Phi(%s)"
                % (phi.id, ", ".join(
                    "v%d" % i.id if i is not None else "_" for i in phi.inputs
                ))
            )
        for node in block.instrs:
            inputs = ", ".join("v%d" % i.id for i in node.inputs)
            rows.append(
                "v%d = %s(%s)" % (node.id, node.brief(), inputs)
                if inputs
                else "v%d = %s" % (node.id, node.brief())
            )
        term = block.terminator
        if term is not None:
            rows.append(term.brief())
        label = "B%d" % block.id
        if include_frequency:
            label += " f=%.2f" % block.frequency
        body = "\\l".join(_escape(r) for r in [label] + rows) + "\\l"
        lines.append('  B%d [label="%s"];' % (block.id, body))
    for block in graph.blocks:
        term = block.terminator
        if term is None:
            continue
        if isinstance(term, n.IfNode):
            lines.append(
                '  B%d -> B%d [label="T %.2f"];'
                % (block.id, term.true_block.id, term.probability)
            )
            lines.append(
                '  B%d -> B%d [label="F %.2f"];'
                % (block.id, term.false_block.id, 1.0 - term.probability)
            )
        else:
            for succ in term.successors():
                lines.append("  B%d -> B%d;" % (block.id, succ.id))
    lines.append("}")
    return "\n".join(lines)


_KIND_COLORS = {
    "E": "palegreen",
    "C": "khaki",
    "P": "lightblue",
    "G": "lightgray",
    "D": "mistyrose",
    "I": "white",
}


def calltree_to_dot(root):
    """Render a partial call tree with the paper's E/C/P/G/D tags."""
    lines = [
        "digraph calltree {",
        "  node [shape=box, style=filled, fontname=monospace, fontsize=9];",
    ]
    ids = {}

    def visit(node):
        index = ids.setdefault(id(node), len(ids))
        if node.is_root:
            label = "root %s" % (node.graph.name if node.graph else "?")
            color = "white"
        else:
            name = (
                node.method.qualified_name
                if node.method is not None
                else "%s.%s" % (
                    node.invoke.declared_class if node.invoke else "?",
                    node.invoke.method_name if node.invoke else "?",
                )
            )
            label = "%s %s\\nf=%.2f |ir|=%d" % (
                node.kind, name, node.frequency, node.ir_size()
            )
            color = _KIND_COLORS.get(node.kind, "white")
        lines.append(
            '  n%d [label="%s", fillcolor=%s];'
            % (index, _escape(label), color)
        )
        for child in node.children:
            child_index = visit(child)
            lines.append("  n%d -> n%d;" % (index, child_index))
        return index

    visit(root)
    lines.append("}")
    return "\n".join(lines)
