"""specs — BDD specification framework (Scala).

specs nests example groups as closures and evaluates expectation
objects. We model nested groups: outer group closures registering inner
example closures, expectations chained through a result monoid — an
allocation- and dispatch-heavy framework pattern.
"""

DESCRIPTION = "nested example-group closures with expectation objects"
ITERATIONS = 14

SOURCE = """
class Result {
  var successes: int;
  var failures: int;
  def init(s: int, f: int): void { this.successes = s; this.failures = f; }
  def and(other: Result): Result {
    return new Result(this.successes + other.successes,
                      this.failures + other.failures);
  }
}

class Expectation {
  var actual: int;
  def init(actual: int): void { this.actual = actual; }
  def mustEqual(expected: int): Result {
    if (this.actual == expected) { return new Result(1, 0); }
    return new Result(0, 1);
  }
  def mustBeLess(bound: int): Result {
    if (this.actual < bound) { return new Result(1, 0); }
    return new Result(0, 1);
  }
}

class Group {
  var examples: ArraySeq;   // of Fn0 returning Result
  def init(): void { this.examples = new ArraySeq(8); }
  def example(body: Fn0): void { this.examples.add(body); }
  def runAll(): Result {
    var acc: Box = new Box(0);
    var fails: Box = new Box(0);
    this.examples.foreach(fun (body: Fn0): void {
      var r: Result = body.apply() as Result;
      acc.value = acc.value + r.successes;
      fails.value = fails.value + r.failures;
    });
    return new Result(acc.value, fails.value);
  }
}

object Main {
  def fib(n: int): int {
    var a: int = 0;
    var b: int = 1;
    var i: int = 0;
    while (i < n) { var t: int = a + b; a = b; b = t; i = i + 1; }
    return a;
  }

  def buildGroup(salt: int): Group {
    var g: Group = new Group();
    var i: int = 0;
    while (i < 16) {
      var n: int = 3 + ((i + salt) % 12);
      g.example(fun (): Object {
        var e: Expectation = new Expectation(Main.fib(n));
        var r1: Result = e.mustBeLess(1000);
        var r2: Result = e.mustEqual(Main.fib(n));
        return r1.and(r2);
      });
      i = i + 1;
    }
    return g;
  }

  def run(): int {
    var successes: int = 0;
    var failures: int = 0;
    var round: int = 0;
    while (round < 6) {
      var r: Result = Main.buildGroup(round).runAll();
      successes = successes + r.successes;
      failures = failures + r.failures;
      round = round + 1;
    }
    return successes * 100 + failures;
  }
}
"""
