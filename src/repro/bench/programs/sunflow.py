"""sunflow — ray tracing.

sunflow's kernel intersects rays with primitives using short vector
math helpers. We model a fixed-point ray caster over spheres and
planes: the per-ray loop calls tiny ``dot``/``intersect`` leaf methods
through a primitive interface — inlining those into the pixel loop is
exactly where its speedup comes from (≈9% over C2 in the paper).
"""

DESCRIPTION = "fixed-point ray casting over sphere/plane primitives"
ITERATIONS = 12

SOURCE = """
// Fixed point with 8 fractional bits.
object Vec {
  @inline def dot(ax: int, ay: int, az: int, bx: int, by: int, bz: int): int {
    return (ax * bx + ay * by + az * bz) >> 8;
  }
}

trait Prim {
  def hit(ox: int, oy: int, oz: int, dx: int, dy: int, dz: int): int;
  def shade(t: int): int;
}

class Sphere implements Prim {
  var cx: int; var cy: int; var cz: int; var r: int; var color: int;
  def init(cx: int, cy: int, cz: int, r: int, color: int): void {
    this.cx = cx; this.cy = cy; this.cz = cz; this.r = r; this.color = color;
  }
  def hit(ox: int, oy: int, oz: int, dx: int, dy: int, dz: int): int {
    var lx: int = this.cx - ox;
    var ly: int = this.cy - oy;
    var lz: int = this.cz - oz;
    var tca: int = Vec.dot(lx, ly, lz, dx, dy, dz);
    if (tca < 0) { return 0 - 1; }
    var d2: int = Vec.dot(lx, ly, lz, lx, ly, lz) - ((tca * tca) >> 8);
    var r2: int = (this.r * this.r) >> 8;
    if (d2 > r2) { return 0 - 1; }
    return tca - MathX.sqrt((r2 - d2) << 8);
  }
  def shade(t: int): int { return this.color + (t >> 6); }
}

class Plane implements Prim {
  var height: int; var color: int;
  def init(height: int, color: int): void {
    this.height = height; this.color = color;
  }
  def hit(ox: int, oy: int, oz: int, dx: int, dy: int, dz: int): int {
    if (dy >= 0) { return 0 - 1; }
    return ((this.height - oy) << 8) / dy;
  }
  def shade(t: int): int { return this.color + (t >> 7); }
}

object Main {
  static var scene: ArraySeq;

  def setup(): void {
    var s: ArraySeq = new ArraySeq(4);
    s.add(new Sphere(0, 0, 1280, 256, 10));
    s.add(new Sphere(512, 128, 1536, 200, 20));
    s.add(new Plane(0 - 256, 5));
    Main.scene = s;
  }

  def run(): int {
    if (Main.scene == null) { Main.setup(); }
    var image: int = 0;
    var py: int = 0;
    while (py < 14) {
      var px: int = 0;
      while (px < 14) {
        var dx: int = (px - 7) * 32;
        var dy: int = (py - 7) * 32;
        var dz: int = 256;
        var best: int = 1 << 20;
        var color: int = 0;
        var i: int = 0;
        while (i < Main.scene.length()) {
          var prim: Prim = Main.scene.get(i) as Prim;
          var t: int = prim.hit(0, 0, 0, dx, dy, dz);
          if (t >= 0 && t < best) { best = t; color = prim.shade(t); }
          i = i + 1;
        }
        image = image + color;
        px = px + 1;
      }
      py = py + 1;
    }
    return image;
  }
}
"""
