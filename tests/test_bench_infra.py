"""Benchmark infrastructure tests: suite registry, measurement
protocol, harness validation."""

import pytest

from repro.bench import all_benchmarks, get_benchmark
from repro.bench.configs import CONFIG_FACTORIES
from repro.bench.harness import run_matrix, format_table
from repro.bench.measurement import measure_benchmark, steady_window
from repro.bench.suite import benchmarks_in_suite


class TestSuiteRegistry:
    def test_28_benchmarks_registered(self):
        assert len(all_benchmarks()) == 28

    def test_suite_partition(self):
        assert len(benchmarks_in_suite("dacapo")) == 10
        assert len(benchmarks_in_suite("scala-dacapo")) == 12
        assert len(benchmarks_in_suite("spark-perf")) == 3
        assert len(benchmarks_in_suite("other")) == 3

    def test_all_programs_compile(self):
        for spec in all_benchmarks():
            program = spec.load()
            assert program.lookup_method("Main", "run") is not None
            assert spec.description

    def test_load_is_cached(self):
        spec = get_benchmark("pmd")
        assert spec.load() is spec.load()


class TestMeasurementProtocol:
    def test_steady_window_rule(self):
        """'average of the last 40% (but at most 20) repetitions'."""
        assert steady_window(10) == 4
        assert steady_window(100) == 20
        assert steady_window(1) == 1

    def test_measurement_runs_instances(self):
        spec = get_benchmark("pmd")
        program = spec.load()
        measurement = measure_benchmark(
            program,
            CONFIG_FACTORIES["incremental"],
            benchmark_name="pmd",
            config_name="incremental",
            instances=2,
            iterations=5,
        )
        assert len(measurement.values) == 2
        assert len(measurement.warmup_curves) == 2
        assert all(len(c) == 5 for c in measurement.warmup_curves)
        assert measurement.mean_cycles > 0
        assert measurement.installed_size > 0

    def test_different_seeds_per_instance(self):
        spec = get_benchmark("pmd")
        program = spec.load()
        a = measure_benchmark(
            program, lambda: None, instances=1, iterations=2, base_seed=1
        )
        b = measure_benchmark(
            program, lambda: None, instances=1, iterations=2, base_seed=1
        )
        assert a.values == b.values  # same seed -> same results


class TestHarness:
    def test_matrix_and_validation(self):
        results = run_matrix(
            ["no-inline", "incremental"], benchmarks=["pmd"], instances=1
        )
        assert "pmd" in results
        row = results["pmd"]
        assert row["no-inline"].values == row["incremental"].values

    def test_table_rendering(self):
        results = run_matrix(
            ["no-inline", "incremental"], benchmarks=["pmd"], instances=1
        )
        table = format_table(results, ["no-inline", "incremental"])
        assert "pmd" in table
        speedups = format_table(
            results,
            ["no-inline", "incremental"],
            metric="speedup",
            baseline="no-inline",
        )
        assert "x" in speedups
        code = format_table(results, ["no-inline", "incremental"], metric="code")
        assert code

    def test_config_registry_contents(self):
        for required in [
            "no-inline",
            "incremental",
            "greedy",
            "c2",
            "shallow-trials",
            "te-1000",
            "ti-3000",
            "1by1-0.0001-1440",
            "cluster-0.005-120",
        ]:
            assert required in CONFIG_FACTORIES, required
