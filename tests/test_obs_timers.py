"""Phase timers: cheap wall-clock accumulators behind Observability."""

import pytest

from repro.obs import NULL_OBS, NULL_TIMERS, Observability, PhaseTimers
from repro.obs.timers import NullPhaseTimers


def test_span_accumulates_seconds_and_counts():
    timers = PhaseTimers()
    for _ in range(3):
        with timers.span("compile"):
            pass
    phase = timers.phase("compile")
    assert phase.count == 3
    assert phase.seconds >= 0.0
    assert timers.seconds("compile") == phase.seconds


def test_unknown_phase_reads_zero():
    timers = PhaseTimers()
    assert timers.seconds("never") == 0.0


def test_snapshot_shape_and_sorting():
    timers = PhaseTimers()
    with timers.span("b.late"):
        pass
    with timers.span("a.early"):
        pass
    snapshot = timers.snapshot()
    assert list(snapshot) == ["a.early", "b.late"]
    for entry in snapshot.values():
        assert set(entry) == {"seconds", "count"}
        assert entry["count"] == 1


def test_span_charges_on_exception():
    timers = PhaseTimers()
    with pytest.raises(ValueError):
        with timers.span("risky"):
            raise ValueError("boom")
    assert timers.phase("risky").count == 1


def test_null_timers_are_inert():
    assert NULL_TIMERS.enabled is False
    with NULL_TIMERS.span("anything"):
        pass
    assert NULL_TIMERS.snapshot() == {}
    assert NULL_TIMERS.seconds("anything") == 0.0
    assert len(NULL_TIMERS) == 0
    assert isinstance(NULL_TIMERS, NullPhaseTimers)


def test_observability_wiring():
    obs = Observability()
    assert isinstance(obs.timers, PhaseTimers)
    assert NULL_OBS.timers is NULL_TIMERS
    custom = PhaseTimers()
    assert Observability(timers=custom).timers is custom


def test_engine_records_compile_phases():
    from repro.baselines import tuned_inliner
    from repro.jit.config import JitConfig
    from repro.jit.engine import Engine
    from tests.helpers import shapes_program

    obs = Observability()
    engine = Engine(
        shapes_program(),
        JitConfig(hot_threshold=5),
        inliner=tuned_inliner(0.1),
        seed=0x5EED,
        obs=obs,
    )
    for _ in range(8):
        engine.run_iteration("Main", "run")
    snapshot = obs.timers.snapshot()
    assert "engine.iteration" in snapshot
    assert snapshot["engine.iteration"]["count"] == 8
    for phase in (
        "compile",
        "compile.build",
        "compile.inline",
        "compile.optimize",
        "compile.lower",
    ):
        assert phase in snapshot, phase
        assert snapshot[phase]["count"] >= 1
    # Sub-phases nest inside the compile span, so their sum is bounded
    # by it.
    parts = sum(
        snapshot[p]["seconds"]
        for p in (
            "compile.build",
            "compile.inline",
            "compile.optimize",
            "compile.lower",
        )
    )
    assert parts <= snapshot["compile"]["seconds"]
