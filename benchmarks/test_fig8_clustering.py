"""Figure 8 — callsite clustering vs 1-by-1 inlining.

The paper implements "a new analysis policy that assigns each method
into a separate cluster" and sweeps the Eq. 12 constants (t1, t2): the
1-by-1 policy is "quite sensitive to the parameters", while "clustering
is relatively insensitive to the choice of parameters, and either
matches or outperforms the best 1-by-1 variant".

We regenerate both sweeps and assert exactly those two claims, as
aggregate properties over the benchmark set:

1. clustering's spread across (t1, t2) choices is no worse than
   1-by-1's spread (insensitivity), and
2. the tuned clustering configuration matches or beats the *best*
   1-by-1 variant on a clear majority of benchmarks.
"""

from benchmarks.conftest import INSTANCES, figure_benchmarks, geomean
from repro.bench.configs import T1T2_SWEEP
from repro.bench.harness import print_table, run_matrix

ONE_BY_ONE = ["1by1-%g-%d" % (t1, t2) for t1, t2 in T1T2_SWEEP]
CLUSTERED = ["cluster-%g-%d" % (t1, t2) for t1, t2 in T1T2_SWEEP]
CONFIGS = CLUSTERED + ONE_BY_ONE


def _spread(results, configs):
    """Geomean over benchmarks of (worst / best) across configs."""
    ratios = []
    for name, row in results.items():
        times = [row[c].mean_cycles for c in configs]
        ratios.append(max(times) / max(1.0, min(times)))
    return geomean(ratios)


def test_fig8_clustering_vs_one_by_one(benchmark, steady_engine_factory):
    results = run_matrix(
        CONFIGS, benchmarks=figure_benchmarks(), instances=INSTANCES
    )
    print_table(
        results, CONFIGS, metric="time",
        title="Figure 8: clustering vs 1-by-1 across (t1, t2) (steady cycles)",
    )

    cluster_spread = _spread(results, CLUSTERED)
    one_by_one_spread = _spread(results, ONE_BY_ONE)
    print(
        "parameter sensitivity (geomean worst/best): clustering %.3f, "
        "1-by-1 %.3f" % (cluster_spread, one_by_one_spread)
    )
    if cluster_spread > one_by_one_spread:
        # The paper's sensitivity ordering does not always hold on our
        # workloads: clustering's together-or-not-at-all commitment can
        # under-inline at strict (t1, t2) where 1-by-1 still picks up
        # individually-beneficial small methods. This is recorded as a
        # known divergence in EXPERIMENTS.md (E4); both policies must
        # at least remain within a sane sensitivity band.
        print(
            "NOTE: clustering measured as the *more* parameter-sensitive "
            "policy on this benchmark set — see EXPERIMENTS.md E4."
        )
    assert cluster_spread < 2.0 and one_by_one_spread < 2.0

    # Robust half of the paper's claim: the best clustering variant
    # matches or outperforms the best 1-by-1 variant on a clear
    # majority of benchmarks, and strictly beats it somewhere.
    wins = 0
    strict_win = False
    for name, row in results.items():
        best_cluster = min(row[c].mean_cycles for c in CLUSTERED)
        best_one_by_one = min(row[c].mean_cycles for c in ONE_BY_ONE)
        if best_cluster <= best_one_by_one * 1.05:
            wins += 1
        if best_cluster < best_one_by_one * 0.995:
            strict_win = True
    assert wins >= (len(results) * 3) // 5, (
        "clustering matched/beat best 1-by-1 on only %d/%d benchmarks"
        % (wins, len(results))
    )
    assert strict_win, "clustering never strictly beat 1-by-1"

    engine = steady_engine_factory("scalariform", "cluster-0.005-120")
    benchmark(engine.run_iteration, "Main", "run")
