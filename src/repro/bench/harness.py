"""Benchmark × configuration sweeps and table rendering."""

import json
import os
import sys

from repro.bench.configs import CONFIG_FACTORIES
from repro.bench.measurement import measure_benchmark
from repro.bench.suite import all_benchmarks, get_benchmark

#: Environment knob: set REPRO_BENCH_QUICK=1 to run a representative
#: subset (used to keep `pytest benchmarks/` snappy; the full sweep is
#: a flag away).
QUICK_ENV = "REPRO_BENCH_QUICK"

#: Representative subset spanning all suites (used in quick mode).
QUICK_BENCHMARKS = [
    "jython",
    "sunflow",
    "factorie",
    "scalac",
    "scalariform",
    "gauss-mix",
    "stmbench7",
]


def selected_benchmarks(names=None):
    if names is not None:
        return [get_benchmark(name) for name in names]
    if os.environ.get(QUICK_ENV):
        return [get_benchmark(name) for name in QUICK_BENCHMARKS]
    return all_benchmarks()


def run_matrix(
    config_names,
    benchmarks=None,
    instances=2,
    progress=None,
    metrics_dir=None,
):
    """Run every benchmark under every configuration.

    Returns ``{benchmark: {config: Measurement}}``. Validates that all
    configurations computed the same result value per instance seed —
    an inliner that changes program semantics fails loudly here.

    With *metrics_dir* set, every (benchmark, configuration) run is
    executed under full observability and a JSON metrics artifact
    (``<benchmark>__<config>.json``, the measurement plus per-instance
    metrics snapshots) is written next to the results.
    """
    obs_factory = None
    if metrics_dir is not None:
        from repro.obs import Observability

        os.makedirs(metrics_dir, exist_ok=True)
        obs_factory = Observability
    results = {}
    for spec in selected_benchmarks(benchmarks):
        program = spec.load()
        row = {}
        for config_name in config_names:
            factory = CONFIG_FACTORIES[config_name]
            measurement = measure_benchmark(
                program,
                factory,
                benchmark_name=spec.name,
                config_name=config_name,
                instances=instances,
                iterations=spec.iterations,
                jit_config_factory=spec.jit_config_factory,
                obs_factory=obs_factory,
            )
            row[config_name] = measurement
            if metrics_dir is not None:
                _write_metrics_artifact(metrics_dir, measurement)
            if progress is not None:
                progress(spec.name, config_name, measurement)
        _validate_values(spec.name, row)
        results[spec.name] = row
    return results


def _write_metrics_artifact(metrics_dir, measurement):
    path = os.path.join(
        metrics_dir,
        "%s__%s.json" % (measurement.benchmark, measurement.config_name),
    )
    with open(path, "w") as handle:
        json.dump(measurement.as_dict(), handle, indent=2, default=str)
        handle.write("\n")
    return path


def _validate_values(benchmark, row):
    reference = None
    for measurement in row.values():
        if reference is None:
            reference = measurement.values
        elif measurement.values != reference:
            raise AssertionError(
                "%s: configurations disagree on results: %r vs %r (%s)"
                % (benchmark, reference, measurement.values, measurement.config_name)
            )


def format_table(results, config_names, metric="time", baseline=None):
    """Render results as an aligned text table.

    metric: "time" (steady cycles), "speedup" (baseline/config time) or
    "code" (installed machine instructions).
    """
    header = ["benchmark"] + list(config_names)
    rows = [header]
    for benchmark in results:
        row = [benchmark]
        measurements = results[benchmark]
        base = measurements.get(baseline) if baseline else None
        for config_name in config_names:
            m = measurements.get(config_name)
            if m is None:
                row.append("-")
            elif metric == "time":
                row.append("%.0f ±%.0f" % (m.mean_cycles, m.std_cycles))
            elif metric == "speedup":
                ref = base.mean_cycles if base else m.mean_cycles
                row.append("%.2fx" % (ref / max(1.0, m.mean_cycles)))
            elif metric == "code":
                row.append("%d" % m.installed_size)
            else:
                raise ValueError("unknown metric %r" % metric)
        rows.append(row)
    widths = [
        max(len(str(row[col])) for row in rows) for col in range(len(header))
    ]
    lines = []
    for row in rows:
        lines.append(
            "  ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def print_table(results, config_names, metric="time", baseline=None, title=None):
    if title:
        print("\n== %s ==" % title)
    print(format_table(results, config_names, metric=metric, baseline=baseline))
    sys.stdout.flush()
