"""Heap value representations.

The guest value universe is: Python ``int`` for the primitive integer
type, ``None`` for the null reference, :class:`ObjRef` for objects and
:class:`ArrayRef` for arrays.
"""

from repro.bytecode import types as bt

#: The null reference.
NULL = None


class ObjRef:
    """An object instance: a class name plus a field dictionary.

    Field storage is pre-populated with default values for every field
    in the superclass chain at allocation time, so field reads never
    miss.
    """

    __slots__ = ("class_name", "fields")

    _counter = 0

    def __init__(self, class_name, fields):
        self.class_name = class_name
        self.fields = fields

    def __repr__(self):
        return "<%s#%x>" % (self.class_name, id(self) & 0xFFFF)


class ArrayRef:
    """An array instance with a fixed element type and length."""

    __slots__ = ("elem_type", "data")

    def __init__(self, elem_type, length):
        self.elem_type = elem_type
        fill = 0 if elem_type == bt.INT else NULL
        self.data = [fill] * length

    @property
    def type_name(self):
        return bt.array_of(self.elem_type)

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        return "<%s[%d]>" % (self.elem_type, len(self.data))


def default_value(type_name):
    """The default (zero) value for a declared type."""
    return 0 if type_name == bt.INT else NULL


def dynamic_type_name(value):
    """The runtime type name of a guest value (None for null)."""
    if value is NULL:
        return None
    if isinstance(value, bool):
        return bt.INT
    if isinstance(value, int):
        return bt.INT
    if isinstance(value, ObjRef):
        return value.class_name
    if isinstance(value, ArrayRef):
        return value.type_name
    raise TypeError("not a guest value: %r" % (value,))
