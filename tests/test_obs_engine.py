"""Engine-level observability: metrics match engine counters, the event
stream describes compilations, and — critically — instrumentation never
perturbs the deterministic cycle model."""

import pytest

from repro.bench.measurement import measure_benchmark
from repro.bench.suite import get_benchmark
from repro.jit import Engine, JitConfig
from repro.jit.engine import IterationResult
from repro.lang import compile_source
from repro.baselines import GreedyInliner, tuned_inliner
from repro.obs import Observability, build_report

SOURCE = """
object Main {
  def helper(x: int): int { return x * 3 + 1; }
  def run(): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < 50) { acc = acc + Main.helper(i); i = i + 1; }
    return acc;
  }
}
"""

EXPECTED = sum(3 * i + 1 for i in range(50))


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE)


def run_engine(program, iterations=8, obs=None, inliner="incremental"):
    policies = {
        "incremental": lambda: tuned_inliner(0.1),
        "greedy": GreedyInliner,
        "none": lambda: None,
    }
    engine = Engine(
        program,
        JitConfig(hot_threshold=20),
        inliner=policies[inliner](),
        obs=obs,
    )
    results = [engine.run_iteration("Main", "run") for _ in range(iterations)]
    return engine, results


class TestEngineMetrics:
    def test_compile_count_matches_engine(self, program):
        obs = Observability()
        engine, results = run_engine(program, obs=obs)
        assert engine.compilation_count > 0
        assert (
            obs.metrics.value("jit.compile.count") == engine.compilation_count
        )
        assert obs.metrics.value("jit.compile.cycles") == engine.compile_cycles
        assert results[-1].value == EXPECTED

    def test_codecache_and_interp_metrics(self, program):
        obs = Observability()
        engine, _ = run_engine(program, obs=obs)
        metrics = obs.metrics
        assert metrics.value("codecache.installs") == engine.compilation_count
        assert (
            metrics.value("codecache.installed_bytes")
            == engine.code_cache.total_size
        )
        assert metrics.value("codecache.hits") > 0
        assert metrics.value("codecache.misses") > 0
        assert metrics.value("interp.calls") > 0
        assert metrics.value("interp.ops") == engine.interpreter.ops_executed
        assert metrics.value("engine.iterations") == 8
        assert metrics.value("profile.methods") == len(engine.profiles)

    def test_event_stream_describes_compilations(self, program):
        obs = Observability()
        engine, _ = run_engine(program, obs=obs)
        compile_spans = obs.events.spans_named("compile")
        assert len(compile_spans) == engine.compilation_count
        names = {r["name"] for r in obs.events.records if r["type"] == "begin"}
        assert {"compile", "build", "inline", "optimize", "lower"} <= names
        # Inlining decisions are bridged into the stream.
        inline_events = [
            r for r in obs.events.records
            if r["type"] == "event" and r["name"].startswith("inline.")
        ]
        assert any(r["name"] == "inline.inline" for r in inline_events)
        # Pass events carry node deltas.
        passes = obs.events.of_name("pass")
        assert passes and all(
            "before" in r["attrs"] and "after" in r["attrs"] for r in passes
        )

    def test_report_rolls_up_the_stream(self, program):
        obs = Observability()
        engine, _ = run_engine(program, obs=obs)
        report = build_report(obs.events.records)
        assert len(report["compiles"]) == engine.compilation_count
        entry = report["compiles"][-1]
        assert entry["method"] in ("Main.run", "Main.helper")
        assert entry["nodes"] > 0 and entry["code_size"] > 0
        assert entry["hotness"] >= 20
        assert report["inline_rollup"]["inline"] > 0
        assert report["pass_stats"]
        assert len(report["iterations"]) == 8

    def test_default_engine_records_nothing(self, program):
        engine, _ = run_engine(program)
        assert engine.obs.enabled is False
        assert engine.obs.metrics.snapshot() == {}
        assert len(engine.obs.events) == 0


class TestObservabilityIsNonPerturbing:
    """With observability disabled (the default) nothing changed; with
    it enabled, the deterministic cycle model must be bit-identical."""

    def test_differential_on_bench_workload(self):
        spec = get_benchmark("pmd")
        program = spec.load()
        plain = measure_benchmark(
            program,
            lambda: tuned_inliner(0.1),
            benchmark_name="pmd",
            config_name="plain",
            instances=1,
            iterations=8,
        )
        observed = measure_benchmark(
            program,
            lambda: tuned_inliner(0.1),
            benchmark_name="pmd",
            config_name="observed",
            instances=1,
            iterations=8,
            obs_factory=Observability,
        )
        assert plain.values == observed.values
        assert plain.warmup_curves == observed.warmup_curves
        assert plain.mean_cycles == observed.mean_cycles
        assert plain.installed_size == observed.installed_size
        assert plain.compilations == observed.compilations
        assert plain.metrics == []
        assert len(observed.metrics) == 1
        assert observed.metrics[0]["jit.compile.count"]["value"] > 0

    def test_differential_on_direct_engine(self, program):
        _, baseline = run_engine(program)
        _, observed = run_engine(program, obs=Observability())
        assert [r.total_cycles for r in baseline] == [
            r.total_cycles for r in observed
        ]
        assert [r.as_dict() for r in baseline] == [
            r.as_dict() for r in observed
        ]


class TestIterationResult:
    def test_repr_includes_compilations_and_installed_size(self, program):
        engine, results = run_engine(program, iterations=3)
        compiled = next(r for r in results if r.compilations)
        text = repr(compiled)
        assert "compilations=%d" % compiled.compilations in text
        assert "installed=%d" % compiled.installed_size in text

    def test_as_dict_covers_all_fields(self):
        result = IterationResult(total_cycles=10, compilations=2)
        data = result.as_dict()
        assert set(data) == set(IterationResult.__slots__)
        assert data["total_cycles"] == 10
        assert data["compilations"] == 2

    def test_installed_size_delta(self, program):
        engine, results = run_engine(program, iterations=6)
        # Reconstructing the absolute curve from deltas must match the
        # reported absolute sizes.
        running = 0
        for result in results:
            running += result.installed_size_delta
            assert running == result.installed_size
        assert results[0].installed_size_delta >= 0
        assert results[-1].installed_size == engine.code_cache.total_size
