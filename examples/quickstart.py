"""Quickstart: compile a minij program, run it on the tiered VM with the
incremental inliner, and watch warmup happen.

Run:  python examples/quickstart.py
"""

from repro.baselines import tuned_inliner
from repro.jit import Engine, JitConfig
from repro.lang import compile_source

SOURCE = """
// A tiny abstraction-heavy workload: generic sequence + lambda.
object Main {
  def run(): int {
    var xs: IntArraySeq = new IntArraySeq(8);
    var i: int = 0;
    while (i < 100) { xs.add(i); i = i + 1; }
    var squares: int = xs.fold(0, fun (acc: int, x: int): int => acc + x * x);
    var evens: int = xs.countWhere(fun (x: int): bool => (x & 1) == 0);
    return squares + evens;
  }
}
"""


def main():
    program = compile_source(SOURCE)
    print("compiled %d classes, %d bytecodes of guest code" % (
        len(program.classes), program.total_code_size()))

    engine = Engine(
        program,
        JitConfig(hot_threshold=25),
        inliner=tuned_inliner(size_factor=0.1),
    )
    print("\niter   total-cycles   interpreted   compiled   jit-time   installed")
    for iteration in range(10):
        r = engine.run_iteration("Main", "run")
        print("%4d %14d %13d %10d %10d %11d" % (
            iteration, r.total_cycles, r.interpreted_cycles,
            r.compiled_cycles, r.compile_cycles, r.installed_size))
    print("\nresult: %d (expected %d)" % (
        r.value, sum(x * x for x in range(100)) + 50))

    print("\ninlining decisions made by the incremental inliner:")
    for record in engine.compiler.records:
        report = record.inline_report
        if report is not None and report.inline_count:
            print("  %-22s rounds=%d expanded=%d inlined=%d typeswitches=%d" % (
                record.method.qualified_name, report.rounds,
                report.expansions, report.inline_count,
                report.typeswitch_count))
            for name in report.inlined_methods:
                print("      inlined %s" % name)


if __name__ == "__main__":
    main()
