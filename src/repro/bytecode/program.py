"""The program container: a closed set of classes plus lookup helpers.

A :class:`Program` is the unit the VM loads. It provides the *static*
resolution queries that the verifier, interpreter and compiler all share:
superclass chains, subtype tests, virtual method resolution and field
lookup. Receiver-profile-driven *speculative* resolution lives in the
runtime and compiler, not here.
"""

from repro.bytecode.klass import ClassDef
from repro.errors import BytecodeError, LinkError


class Program:
    """A closed collection of :class:`ClassDef` plus resolution caches."""

    def __init__(self):
        self.classes = {}
        root = ClassDef("Object")
        self.classes["Object"] = root
        self._subtype_cache = {}
        self._resolve_cache = {}
        self._lookup_cache = {}
        #: Bumped whenever the class set changes; consumers holding
        #: pre-resolved methods (the pre-decoded interpreter tier) key
        #: their caches on this to stay coherent with late class loads.
        self.generation = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_class(self, klass):
        if klass.name in self.classes:
            raise BytecodeError("duplicate class %s" % klass.name)
        self.classes[klass.name] = klass
        self._subtype_cache.clear()
        self._resolve_cache.clear()
        self._lookup_cache.clear()
        self.generation += 1
        return klass

    def define_class(self, name, **kwargs):
        """Create, register and return a new :class:`ClassDef`."""
        return self.add_class(ClassDef(name, **kwargs))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def klass(self, name):
        try:
            return self.classes[name]
        except KeyError:
            raise LinkError("unknown class %r" % (name,))

    def has_class(self, name):
        return name in self.classes

    def superclass_chain(self, name):
        """Yield *name* and each superclass up to the root."""
        while name is not None:
            klass = self.klass(name)
            yield klass
            name = klass.superclass

    def all_interfaces(self, name):
        """The transitive set of interface names implemented by *name*."""
        seen = set()
        work = []
        for klass in self.superclass_chain(name):
            work.extend(klass.interfaces)
        if self.klass(name).is_interface:
            work.append(name)
        while work:
            iname = work.pop()
            if iname in seen:
                continue
            seen.add(iname)
            work.extend(self.klass(iname).interfaces)
        return seen

    def is_subtype(self, sub, sup):
        """Subtype test over classes, interfaces and arrays.

        Arrays are covariant in their element type (as on the JVM), and
        every array type is a subtype of ``Object``.
        """
        if sub == sup or sup == "Object":
            return True
        key = (sub, sup)
        cached = self._subtype_cache.get(key)
        if cached is not None:
            return cached
        result = self._compute_subtype(sub, sup)
        self._subtype_cache[key] = result
        return result

    def _compute_subtype(self, sub, sup):
        if sub.endswith("[]"):
            if sup.endswith("[]"):
                se, pe = sub[:-2], sup[:-2]
                if se == "int" or pe == "int":
                    return se == pe
                return self.is_subtype(se, pe)
            return False
        if sup.endswith("[]"):
            return False
        sup_klass = self.klass(sup)
        if sup_klass.is_interface:
            return sup in self.all_interfaces(sub)
        for klass in self.superclass_chain(sub):
            if klass.name == sup:
                return True
        return False

    def resolve_method(self, class_name, method_name):
        """Resolve *method_name* against *class_name* as a receiver type.

        Walks the superclass chain first (instance method overriding),
        then falls back to interface default methods, mirroring JVM
        resolution order closely enough for our purposes.

        Returns the concrete :class:`Method`, which may be abstract when
        the receiver type is itself abstract or an interface.
        """
        key = (class_name, method_name)
        cached = self._resolve_cache.get(key)
        if cached is not None:
            return cached
        found = None
        for klass in self.superclass_chain(class_name):
            method = klass.methods.get(method_name)
            if method is not None:
                found = method
                break
        if found is None or found.is_abstract:
            # Interface default methods: most-specific wins; we accept
            # the first concrete one found (minij's resolver guarantees
            # no ambiguous defaults reach this point).
            for iname in sorted(self.all_interfaces(class_name)):
                method = self.klass(iname).methods.get(method_name)
                if method is not None and not method.is_abstract:
                    found = method
                    break
        if found is None:
            raise LinkError(
                "method %s not found on %s" % (method_name, class_name)
            )
        self._resolve_cache[key] = found
        return found

    def lookup_method(self, class_name, method_name):
        """Resolve a method for signature purposes (abstract is fine).

        Cached like :meth:`resolve_method`: this is on the interpreter's
        per-call hot path (every executed INVOKESTATIC/INVOKEVIRTUAL).
        """
        key = (class_name, method_name)
        cached = self._lookup_cache.get(key)
        if cached is not None:
            return cached
        found = None
        for klass in self.superclass_chain(class_name):
            method = klass.methods.get(method_name)
            if method is not None:
                found = method
                break
        if found is None:
            for iname in sorted(self.all_interfaces(class_name)):
                method = self.klass(iname).methods.get(method_name)
                if method is not None:
                    found = method
                    break
        if found is None:
            raise LinkError(
                "method %s not found on %s" % (method_name, class_name)
            )
        self._lookup_cache[key] = found
        return found

    def lookup_field(self, class_name, field_name):
        """Find the declaring class and :class:`FieldDef` of a field."""
        for klass in self.superclass_chain(class_name):
            field = klass.fields.get(field_name)
            if field is not None:
                return klass, field
        raise LinkError("field %s not found on %s" % (field_name, class_name))

    def concrete_subclasses(self, name):
        """All non-abstract classes that are subtypes of *name*.

        Used by the compiler for class-hierarchy-based devirtualization
        of callsites whose receiver type has a single implementor.
        """
        result = []
        for cname, klass in self.classes.items():
            if not klass.is_interface and not klass.is_abstract:
                if self.is_subtype(cname, name):
                    result.append(cname)
        return sorted(result)

    def methods_iter(self):
        """Iterate over every declared method in the program."""
        for klass in self.classes.values():
            for method in klass.methods.values():
                yield method

    def total_code_size(self):
        return sum(len(m.code) for m in self.methods_iter())

    def __repr__(self):
        return "<Program %d classes, %d methods>" % (
            len(self.classes),
            sum(len(k.methods) for k in self.classes.values()),
        )
