"""Tiered-engine tests: hotness, tier transitions, accounting."""

import pytest

from repro.baselines import GreedyInliner, tuned_inliner
from repro.errors import CompileError
from repro.jit import CodeCache, Engine, JitConfig
from tests.helpers import SHAPES_RESULT, shapes_program


class TestCodeCache:
    def test_install_and_total_size(self):
        cache = CodeCache()

        class FakeCode:
            def __init__(self, size):
                self.size = size

        method = object()
        cache.install(method, FakeCode(10))
        assert cache.total_size == 10
        cache.install(method, FakeCode(25))  # reinstall replaces
        assert cache.total_size == 25
        assert len(cache) == 1
        assert cache.install_count == 2


class TestTiering:
    def test_cold_methods_interpret(self):
        program = shapes_program()
        engine = Engine(program, JitConfig(hot_threshold=10 ** 9))
        result = engine.run_iteration("Main", "run")
        assert result.value == SHAPES_RESULT
        assert result.compiled_cycles == 0
        assert engine.code_cache.total_size == 0

    def test_hot_methods_compile(self):
        program = shapes_program()
        engine = Engine(program, JitConfig(hot_threshold=20))
        for _ in range(4):
            result = engine.run_iteration("Main", "run")
        assert engine.code_cache.total_size > 0
        assert result.interpreted_cycles == 0  # fully compiled by now
        assert result.value == SHAPES_RESULT

    def test_compile_disabled(self):
        program = shapes_program()
        engine = Engine(program, JitConfig(compile_enabled=False, hot_threshold=1))
        for _ in range(3):
            engine.run_iteration("Main", "run")
        assert engine.compilation_count == 0

    def test_warmup_curve_descends(self):
        program = shapes_program()
        engine = Engine(program, JitConfig(hot_threshold=20))
        curve = [engine.run_iteration("Main", "run").total_cycles for _ in range(6)]
        assert curve[-1] < curve[0]

    def test_iteration_accounting_sums(self):
        program = shapes_program()
        engine = Engine(program, JitConfig(hot_threshold=20))
        for _ in range(5):
            r = engine.run_iteration("Main", "run")
            assert r.total_cycles == (
                r.interpreted_cycles
                + r.compiled_cycles
                + r.compile_cycles
                + r.icache_cycles
            )

    def test_values_stable_across_tiers(self):
        program = shapes_program()
        engine = Engine(program, JitConfig(hot_threshold=15))
        values = {engine.run_iteration("Main", "run").value for _ in range(6)}
        assert values == {SHAPES_RESULT}

    def test_compile_failure_is_isolated(self):
        program = shapes_program()
        engine = Engine(program, JitConfig(hot_threshold=5))

        real_compile = engine.compiler.compile

        def failing(method):
            if method.name == "total":
                raise CompileError("synthetic failure")
            return real_compile(method)

        engine.compiler.compile = failing
        for _ in range(5):
            result = engine.run_iteration("Main", "run")
        assert result.value == SHAPES_RESULT
        assert program.lookup_method("Main", "total") in engine._compile_failed

    def test_inlined_callee_not_separately_compiled(self):
        """Paper §II.2 (compilation impact): once total is inlined into
        run, its hotness stops accruing at that callsite."""
        program = shapes_program()
        engine = Engine(
            program, JitConfig(hot_threshold=30), inliner=tuned_inliner()
        )
        for _ in range(10):
            engine.run_iteration("Main", "run")
        total = program.lookup_method("Main", "total")
        run = program.lookup_method("Main", "run")
        profile = engine.profiles.of(total)
        compiled_at = profile.invocations
        for _ in range(5):
            engine.run_iteration("Main", "run")
        # run is compiled with total inlined: no further interpretation.
        assert engine.profiles.of(total).invocations == compiled_at
        assert engine.code_cache.get(run) is not None

    def test_max_compiled_methods_cap(self):
        program = shapes_program()
        engine = Engine(
            program, JitConfig(hot_threshold=1, max_compiled_methods=1)
        )
        for _ in range(4):
            engine.run_iteration("Main", "run")
        assert len(engine.code_cache) <= 1


class TestInlinersInEngine:
    @pytest.mark.parametrize(
        "factory", [None, GreedyInliner, tuned_inliner], ids=["none", "greedy", "inc"]
    )
    def test_policies_agree_on_results(self, factory):
        program = shapes_program()
        engine = Engine(
            program,
            JitConfig(hot_threshold=20),
            inliner=factory() if factory else None,
        )
        for _ in range(8):
            result = engine.run_iteration("Main", "run")
        assert result.value == SHAPES_RESULT

    def test_incremental_beats_no_inlining(self):
        program = shapes_program()
        baseline = Engine(program, JitConfig(hot_threshold=20))
        inlined = Engine(
            program, JitConfig(hot_threshold=20), inliner=tuned_inliner()
        )
        for _ in range(10):
            base_result = baseline.run_iteration("Main", "run")
            inlined_result = inlined.run_iteration("Main", "run")
        assert inlined_result.total_cycles < base_result.total_cycles
