"""Worklist-driven canonicalization.

This is the reproduction of Graal's *canonicalizer*, the transformation
the paper triggers during deep inlining trials: "This phase includes a
set of optimizations, such as constant folding, strength reduction,
branch pruning, global value numbering, and JVM-specific simplifications
such as type-check folding for values of known type" (§IV).

Each local rewrite is classified and counted in :class:`CanonStats`;
the inliner's N_s(n) (Eq. 4) reads exactly the *simple* counters —
constant folds, strength reductions and branch prunings — matching the
paper's "we calculate N_s(n) only for the simplest optimizations".

The pass also performs speculative-free devirtualization: a dispatched
call whose receiver stamp pins the type (or whose declared type has a
single concrete implementation under closed-world CHA) becomes a direct
call. Devirtualizations are counted separately — they feed the call-tree
expansion, not N_s.
"""

from repro.bytecode.opcodes import Op
from repro.runtime.int64 import int_div, int_rem, is_wrapped, wrap64
from repro.ir import nodes as n
from repro.ir import stamps as st


class CanonStats:
    """Counters for one canonicalization run.

    ``simple()`` is the paper's N_s contribution: the simplest
    optimizations, all weighted equally (§IV).
    """

    __slots__ = (
        "constant_folds",
        "strength_reductions",
        "branch_prunings",
        "type_check_folds",
        "devirtualizations",
        "phi_simplifications",
        "rounds",
    )

    def __init__(self):
        self.constant_folds = 0
        self.strength_reductions = 0
        self.branch_prunings = 0
        self.type_check_folds = 0
        self.devirtualizations = 0
        self.phi_simplifications = 0
        self.rounds = 0

    def simple(self):
        return (
            self.constant_folds
            + self.strength_reductions
            + self.branch_prunings
            + self.type_check_folds
        )

    def total(self):
        return self.simple() + self.devirtualizations + self.phi_simplifications

    def merge(self, other):
        self.constant_folds += other.constant_folds
        self.strength_reductions += other.strength_reductions
        self.branch_prunings += other.branch_prunings
        self.type_check_folds += other.type_check_folds
        self.devirtualizations += other.devirtualizations
        self.phi_simplifications += other.phi_simplifications
        self.rounds += other.rounds
        return self

    def __repr__(self):
        return (
            "<CanonStats cf=%d sr=%d bp=%d tcf=%d devirt=%d phi=%d>"
            % (
                self.constant_folds,
                self.strength_reductions,
                self.branch_prunings,
                self.type_check_folds,
                self.devirtualizations,
                self.phi_simplifications,
            )
        )


def canonicalize(graph, program, max_rounds=4, devirtualize=True):
    """Run canonicalization to a fixpoint (bounded); returns CanonStats."""
    canon = _Canonicalizer(graph, program, devirtualize)
    return canon.run(max_rounds)


class _Canonicalizer:
    def __init__(self, graph, program, devirtualize):
        self.graph = graph
        self.program = program
        self.devirtualize = devirtualize
        self.stats = CanonStats()
        self._work = []
        self._queued = set()

    # -- worklist ---------------------------------------------------------

    def _enqueue(self, node):
        if node is not None and node.id not in self._queued:
            self._queued.add(node.id)
            self._work.append(node)

    def _enqueue_uses(self, node):
        for user in node.uses:
            self._enqueue(user)

    def run(self, max_rounds):
        for _ in range(max_rounds):
            self.stats.rounds += 1
            self._work = []
            self._queued = set()
            for block in self.graph.blocks:
                for node in block.all_nodes():
                    self._enqueue(node)
            before = self.stats.total()
            while self._work:
                node = self._work.pop()
                self._queued.discard(node.id)
                if node.block is None and not isinstance(node, n.ParamNode):
                    continue  # already removed
                self._visit(node)
            if self.stats.total() == before:
                break
        return self.stats

    # -- node replacement --------------------------------------------------

    def _replace(self, node, replacement):
        """Replace a value node with *replacement* and detach it."""
        block = node.block
        self._enqueue_uses(node)
        self.graph.replace_uses(node, replacement)
        node.clear_inputs()
        if block is not None:
            if node in block.phis:
                block.phis.remove(node)
            elif node in block.instrs:
                block.instrs.remove(node)
        node.block = None
        self._enqueue(replacement)

    def _new_const(self, value, at_node):
        # The single wrapping point for folded constants: _fold_binop
        # and _visit_neg hand over mathematically exact results, and
        # wrap64 here re-establishes the guest-integer invariant.
        value = wrap64(value)
        assert is_wrapped(value)
        const = self.graph.register(n.ConstIntNode(value))
        block = at_node.block
        if at_node in block.instrs:
            block.insert(block.instrs.index(at_node), const)
        else:
            block.insert(0, const)
        return const

    def _new_null(self, at_node):
        null = self.graph.register(n.ConstNullNode())
        block = at_node.block
        if at_node in block.instrs:
            block.insert(block.instrs.index(at_node), null)
        else:
            block.insert(0, null)
        return null

    # -- dispatch ------------------------------------------------------------

    def _visit(self, node):
        t = type(node)
        if t is n.BinOpNode:
            self._visit_binop(node)
        elif t is n.NegNode:
            self._visit_neg(node)
        elif t is n.CompareNode:
            self._visit_compare(node)
        elif t is n.PhiNode:
            self._visit_phi(node)
        elif t is n.IfNode:
            self._visit_if(node)
        elif t is n.InstanceOfNode:
            self._visit_instanceof(node)
        elif t is n.CheckCastNode:
            self._visit_checkcast(node)
        elif t is n.PiNode:
            self._visit_pi(node)
        elif t is n.InvokeNode:
            self._visit_invoke(node)
        elif t is n.GuardNode:
            self._visit_guard(node)

    # -- arithmetic ---------------------------------------------------------

    def _visit_guard(self, node):
        """Delete guards whose condition is provably true.

        This is what finishes speculative devirtualization: once the
        receiver's exact-type check folds to a constant 1 (e.g. the
        receiver is a Pi already refined to the speculated type), the
        guard — and with it the last trace of the virtual fallback —
        disappears from the graph.
        """
        condition = node.inputs[0]
        if condition.stamp.const is not None and condition.stamp.const != 0:
            self.stats.branch_prunings += 1
            node.clear_inputs()
            node.block.instrs.remove(node)
            node.block = None

    def _visit_binop(self, node):
        a, b = node.inputs
        ca, cb = a.stamp.const, b.stamp.const
        op = node.op
        if ca is not None and cb is not None:
            folded = _fold_binop(op, ca, cb)
            if folded is not None:
                self.stats.constant_folds += 1
                self._replace(node, self._new_const(folded, node))
                return
        reduced = self._strength_reduce(node, op, a, b, ca, cb)
        if reduced is not None:
            self.stats.strength_reductions += 1
            self._replace(node, reduced)

    def _strength_reduce(self, node, op, a, b, ca, cb):
        """Return a replacement node, or None. May create new nodes."""
        if op == Op.ADD:
            if cb == 0:
                return a
            if ca == 0:
                return b
        elif op == Op.SUB:
            if cb == 0:
                return a
            if a is b:
                return self._new_const(0, node)
        elif op == Op.MUL:
            if cb == 1:
                return a
            if ca == 1:
                return b
            if cb == 0 or ca == 0:
                return self._new_const(0, node)
            if cb == -1:
                return self._new_neg(a, node)
            if ca == -1:
                return self._new_neg(b, node)
            # Power-of-two strength reduction, both operand orders and
            # both signs (MUL is commutative and x * -2^k == -(x << k),
            # exact even at the wrapping boundary).  INT64_MIN itself is
            # -2^63 and reduces through the negative branch.
            if cb is not None:
                return self._reduce_pow2_mul(a, cb, node)
            if ca is not None:
                return self._reduce_pow2_mul(b, ca, node)
        elif op == Op.DIV:
            if cb == 1:
                return a
        elif op == Op.REM:
            if cb == 1 or cb == -1:
                return self._new_const(0, node)
        elif op == Op.AND:
            if cb == 0 or ca == 0:
                return self._new_const(0, node)
            if cb == -1:
                return a
            if ca == -1:
                return b
            if a is b:
                return a
        elif op == Op.OR:
            if cb == 0:
                return a
            if ca == 0:
                return b
            if a is b:
                return a
        elif op == Op.XOR:
            if cb == 0:
                return a
            if ca == 0:
                return b
            if a is b:
                return self._new_const(0, node)
        elif op in (Op.SHL, Op.SHR):
            if cb == 0:
                return a
        return None

    def _new_neg(self, value, at_node):
        neg = self.graph.register(n.NegNode(value))
        at_node.block.insert(at_node.block.instrs.index(at_node), neg)
        return neg

    def _reduce_pow2_mul(self, value, factor, node):
        """Reduce ``value * factor`` for power-of-two |factor| > 1."""
        magnitude = -factor if factor < 0 else factor
        if magnitude <= 1 or magnitude & (magnitude - 1):
            return None
        shift = self._new_const(magnitude.bit_length() - 1, node)
        shl = self.graph.register(n.BinOpNode(Op.SHL, value, shift))
        node.block.insert(node.block.instrs.index(node), shl)
        if factor < 0:
            return self._new_neg(shl, node)
        return shl

    def _visit_neg(self, node):
        value = node.inputs[0]
        if value.stamp.const is not None:
            self.stats.constant_folds += 1
            self._replace(node, self._new_const(-value.stamp.const, node))
        elif isinstance(value, n.NegNode):
            self.stats.strength_reductions += 1
            self._replace(node, value.inputs[0])

    def _visit_compare(self, node):
        a, b = node.inputs
        op = node.op
        if op in (Op.REF_EQ, Op.REF_NE):
            result = _fold_ref_compare(op, a, b)
        else:
            result = None
            ca, cb = a.stamp.const, b.stamp.const
            if ca is not None and cb is not None:
                result = _fold_int_compare(op, ca, cb)
            elif a is b:
                result = 1 if op in (Op.EQ, Op.LE, Op.GE) else 0
        if result is not None:
            self.stats.constant_folds += 1
            self._replace(node, self._new_const(result, node))

    # -- phis -----------------------------------------------------------------

    def _visit_phi(self, phi):
        distinct = {i for i in phi.inputs if i is not None and i is not phi}
        if len(distinct) == 1:
            self.stats.phi_simplifications += 1
            self._replace(phi, distinct.pop())
            return
        old = phi.stamp
        phi.recompute_stamp(self.program)
        if phi.stamp != old:
            self._enqueue_uses(phi)

    # -- control flow ----------------------------------------------------------

    def _visit_if(self, node):
        block = node.block
        if block is None or block.terminator is not node:
            return
        condition = node.inputs[0]
        const = condition.stamp.const
        if const is None and node.true_block is not node.false_block:
            return
        if node.true_block is node.false_block:
            kept, removed = node.true_block, node.false_block
            # Both edges target the same block: drop one pred slot.
            removed.remove_pred_edge(block)
        else:
            kept = node.true_block if const != 0 else node.false_block
            removed = node.false_block if const != 0 else node.true_block
            removed.remove_pred_edge(block)
        self.stats.branch_prunings += 1
        node.clear_inputs()
        goto = self.graph.register(n.GotoNode(kept))
        block.set_terminator(goto)
        for phi in kept.phis:
            self._enqueue(phi)
        # Pruning may strand whole regions; eliminate them now so join
        # phis downstream lose their dead inputs within the same pass
        # (deep inlining trials rely on this immediacy).
        from repro.opts.dce import remove_unreachable_blocks

        if remove_unreachable_blocks(self.graph):
            for live_block in self.graph.blocks:
                for phi in live_block.phis:
                    self._enqueue(phi)

    # -- type system -------------------------------------------------------------

    def _visit_instanceof(self, node):
        value = node.inputs[0]
        stamp = value.stamp
        result = None
        #: True: every *non-null* value with this stamp passes the
        #: check; False: no value passes. None: undecided.
        matches = None
        if stamp.is_null:
            result = 0
        elif node.exact:
            if stamp.exact:
                matches = stamp.type_name == node.type_name
        else:
            if stamp.asserts_type(self.program, node.type_name):
                matches = True
            elif stamp.excludes_type(self.program, node.type_name):
                matches = False
        if matches is True and stamp.non_null:
            result = 1
        elif matches is False:
            # null yields 0 too, so nullability cannot flip this.
            result = 0
        if result is not None:
            self.stats.type_check_folds += 1
            self._replace(node, self._new_const(result, node))
            return
        if matches is True:
            # The type is known to match but the value may be null: the
            # whole subtype test reduces to a null test (null→0, else 1).
            null = self._new_null(node)
            test = self.graph.register(n.CompareNode(Op.REF_NE, value, null))
            node.block.insert(node.block.instrs.index(node), test)
            self.stats.type_check_folds += 1
            self._replace(node, test)

    def _visit_checkcast(self, node):
        value = node.inputs[0]
        stamp = value.stamp
        if stamp.is_null or stamp.asserts_type(self.program, node.type_name):
            self.stats.type_check_folds += 1
            # A provably-passing cast still folds away, but the cast
            # node may carry facts the input's current stamp lacks
            # (accumulated while the input was known more precisely):
            # keep that narrowing as a Pi instead of handing users the
            # wider raw value.
            refined = stamp.join(node.stamp, self.program)
            if (
                refined.kind != st.Stamp.BOTTOM
                and refined != stamp
                and not stamp.is_null
            ):
                pi = self.graph.register(n.PiNode(value, refined))
                node.block.insert(node.block.instrs.index(node), pi)
                self._replace(node, pi)
            else:
                self._replace(node, value)
            return
        refined = stamp.join(st.ref_stamp(node.type_name), self.program)
        if refined.kind != st.Stamp.BOTTOM and refined != node.stamp:
            node.stamp = refined
            self._enqueue_uses(node)

    def _visit_pi(self, node):
        value = node.inputs[0]
        refined = value.stamp.join(node.stamp, self.program)
        if refined.kind != st.Stamp.BOTTOM and refined != node.stamp:
            node.stamp = refined
            self._enqueue_uses(node)
        if value.stamp == node.stamp:
            self._replace(node, value)

    # -- calls ----------------------------------------------------------------------

    def _visit_invoke(self, node):
        if not self.devirtualize or not node.is_dispatched:
            return
        if node.block is None:
            return
        receiver = node.receiver()
        target = self._devirtualize_target(node, receiver)
        if target is not None and not target.is_abstract:
            node.devirtualize(target)
            self.stats.devirtualizations += 1

    def _devirtualize_target(self, node, receiver):
        program = self.program
        stamp = receiver.stamp
        if stamp.kind == st.Stamp.REF and stamp.exact and stamp.type_name:
            return program.resolve_method(stamp.type_name, node.method_name)
        # Closed-world CHA on the stamp's upper bound (falling back to
        # the declared class).
        bound = None
        if stamp.kind == st.Stamp.REF and stamp.type_name:
            bound = stamp.type_name
        if bound is None or bound.endswith("[]"):
            bound = node.declared_class
        if bound.endswith("[]"):
            return None
        concrete = program.concrete_subclasses(bound)
        if bound != node.declared_class:
            # The stamp bound may be *wider* than the declared type
            # (e.g. a phi of two implementors joins to Object); only
            # classes that also satisfy the declared receiver type are
            # possible at runtime — others need not resolve the method.
            legal = set(program.concrete_subclasses(node.declared_class))
            concrete = [c for c in concrete if c in legal]
        if not concrete:
            return None
        targets = {program.resolve_method(c, node.method_name) for c in concrete}
        if len(targets) == 1:
            return targets.pop()
        return None


# ---------------------------------------------------------------------------
# Pure folding helpers
# ---------------------------------------------------------------------------


def _fold_binop(op, a, b):
    # Contract: results are mathematically exact and may exceed the
    # 64-bit guest range (ADD/SUB/MUL overflow, INT64_MIN / -1).  Every
    # caller routes them through _Canonicalizer._new_const, whose
    # wrap64 + assertion is the single point where folded constants
    # re-enter guest-integer space — keeping the folder consistent with
    # the interpreter and the machine, which wrap after every step.
    if op == Op.ADD:
        return a + b
    if op == Op.SUB:
        return a - b
    if op == Op.MUL:
        return a * b
    if op == Op.DIV:
        return None if b == 0 else int_div(a, b)
    if op == Op.REM:
        return None if b == 0 else int_rem(a, b)
    if op == Op.AND:
        return a & b
    if op == Op.OR:
        return a | b
    if op == Op.XOR:
        return a ^ b
    if op == Op.SHL:
        return a << (b & 63)
    if op == Op.SHR:
        return a >> (b & 63)
    return None


def _fold_int_compare(op, a, b):
    if op == Op.EQ:
        return 1 if a == b else 0
    if op == Op.NE:
        return 1 if a != b else 0
    if op == Op.LT:
        return 1 if a < b else 0
    if op == Op.LE:
        return 1 if a <= b else 0
    if op == Op.GT:
        return 1 if a > b else 0
    if op == Op.GE:
        return 1 if a >= b else 0
    return None


def _fold_ref_compare(op, a, b):
    result = None
    if a is b:
        result = True
    elif a.stamp.is_null and b.stamp.is_null:
        result = True
    elif a.stamp.is_null and b.stamp.non_null:
        result = False
    elif b.stamp.is_null and a.stamp.non_null:
        result = False
    if result is None:
        return None
    if op == Op.REF_NE:
        result = not result
    return 1 if result else 0
