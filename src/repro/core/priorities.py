"""Benefit and priority formulas (§IV, Eq. 4–7 and 13–14).

Local benefit, Eq. 4 (N_s differs by kind)::

    B_L(n) = f(n) · (1 + N_s(n))
        N_s = #(more-concrete args)      for cutoff nodes
        N_s = #(trial optimizations)     for expanded nodes

Polymorphic nodes use the profile-weighted sum over speculated targets,
Eq. 13. Intrinsic exploration priority, Eq. 5::

    P_I(n) = B_L(n) / |ir(n)|                  kind = C
    P_I(n) = max over children of P_I(c)       kind = E

Final priority, Eq. 6–7: P(n) = P_I(n) − ψ(n), with the exploration
penalty ψ(n) = p1·S_irn(n) + p2·S_b(n) − b1·max(0, b2 − N_c(n)²).
Recursive callsites additionally pay ψ_r (Eq. 14) on their intrinsic
priority, which leaves shallow recursion untouched and suppresses deep
recursion exponentially.
"""

from repro.core.calltree import NodeKind


def local_benefit(node):
    """B_L(n), Eq. 4 / Eq. 13."""
    kind = node.kind
    if kind == NodeKind.DELETED or kind == NodeKind.GENERIC:
        return 0.0
    if kind == NodeKind.POLYMORPHIC:
        return sum(
            child.probability * local_benefit(child) for child in node.children
        )
    if kind == NodeKind.CUTOFF:
        return node.frequency * (1.0 + node.concrete_arg_count)
    # Expanded.
    return node.frequency * (1.0 + node.trial_opt_count)


def intrinsic_priority(node, params):
    """P_I(n), Eq. 5, with the recursion penalty ψ_r applied to cutoffs."""
    kind = node.kind
    if kind == NodeKind.CUTOFF:
        size = max(1, node.ir_size())
        priority = local_benefit(node) / size
        return priority - recursion_penalty(node, params)
    if kind in (NodeKind.EXPANDED, NodeKind.POLYMORPHIC):
        best = float("-inf")
        for child in node.children:
            if child.kind == NodeKind.DELETED or child.kind == NodeKind.GENERIC:
                continue
            value = intrinsic_priority(child, params)
            if value > best:
                best = value
        return best if best != float("-inf") else 0.0
    return 0.0


def exploration_penalty(node, params):
    """ψ(n), Eq. 7."""
    n_c = node.n_c()
    return (
        params.p1 * node.s_irn()
        + params.p2 * node.s_b()
        - params.b1 * max(0.0, params.b2 - float(n_c * n_c))
    )


def priority(node, params):
    """P(n), Eq. 6."""
    return intrinsic_priority(node, params) - exploration_penalty(node, params)


def recursion_penalty(node, params):
    """ψ_r(n), Eq. 14: max(1, f(n)) · max(0, 2^d(n) − 2)."""
    depth = node.recursion_depth()
    if depth <= 0:
        return 0.0
    pressure = max(0.0, float(2 ** depth) - float(params.recursion_free_depth))
    if pressure == 0.0:
        return 0.0
    return max(1.0, node.frequency) * pressure
