"""Composability of background compilation with the other env pins.

``REPRO_COMPILE=async`` moves compilation onto a background queue that
the workload drains at iteration edges; values, trap kinds, and printed
output must stay bit-identical to synchronous compilation under every
combination of the speculation, OSR, and interpreter-tier pins — the
async pipeline may only change *when* compiled code becomes available,
never what it computes. Cycles are deliberately not compared across the
compile-mode bit: async charges compile cycles to the engine's
``background_compile_cycles`` ledger instead of the triggering
iteration, so per-iteration cycle counts legitimately differ.

The compile-mode pin is read at engine construction, so every
combination runs in a fresh subprocess (same harness as
``test_env_pin_matrix``).

The workload engines request ``backend="py"`` (the Python-codegen top
tier), and a sampled set of combinations re-runs with
``REPRO_BACKEND=machine`` pinned on top — the backend is bit-identical
by construction, so four representative combinations suffice instead
of doubling the cross-product to 32. ``REPRO_TYPESPEC=off`` is sampled
the same way: its observable contract is the speculation pin's, so
three representative combinations cover it instead of another
doubling.
"""

import itertools
import json
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: (env var, pinned value) — bit i of a combination sets PINS[i].
PINS = [
    ("REPRO_COMPILE", "async"),
    ("REPRO_SPECULATE", "off"),
    ("REPRO_OSR", "off"),
    ("REPRO_INTERP", "predecode"),
    ("REPRO_BACKEND", "machine"),
    ("REPRO_TYPESPEC", "off"),
]

#: Sampled combinations with the backend pinned back to the machine
#: executor: both compile modes, alone and with everything else pinned,
#: so a backend/pipeline interaction would show in either mode.
BACKEND_PINNED_COMBOS = [
    (False, False, False, False, True, False),
    (True, False, False, False, True, False),
    (True, True, True, True, True, True),
    (False, True, True, True, True, True),
]

#: Sampled combinations with type-check speculation pinned off: alone
#: in both compile modes (a refuted type guard in async mode must
#: cancel pending requests exactly like a receiver guard), and stacked
#: on the speculation pin, which already disables it — the double-off
#: corner must not diverge.
TYPESPEC_PINNED_COMBOS = [
    (False, False, False, False, False, True),
    (True, False, False, False, False, True),
    (False, True, False, False, False, True),
]

# The pinned workload, three parts, each stressing a different
# interaction with the background pipeline:
#
# 1. The receiver-flip driver: speculation plus a guaranteed deopt at
#    iteration 10 — a deopt in async mode also cancels pending requests
#    for the method, so this exercises the cancellation edge.
#
# 2. The shapes loop with an unreachable dispatch threshold: the only
#    route into compiled code is an OSR transfer, so in async mode the
#    OSR continuation itself is compiled in the background.
#
# 3. A trapping division driven through zero every fourth call: trap
#    kinds must survive the compiled tier regardless of *when* the
#    compiled code was installed.
#
# 4. The classify driver from the typespec tests: monomorphic warmup
#    lets the compiler guard the instanceof on the profiled exact type,
#    then alternating operand types refute it — a type guard refuted in
#    async mode exercises the same cancellation edge as the receiver
#    flip.
CHILD = r"""
import json

from repro.baselines import tuned_inliner
from repro.errors import TrapError
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from tests.test_deopt import flip_program
from tests.helpers import shapes_program, single_method_program

def observe(engine, cls, name, args):
    try:
        return ("value", engine.run_iteration(cls, name, args).value)
    except TrapError as trap:
        return ("trap", trap.kind)
    finally:
        # Async mode: settle the queue at the iteration edge so
        # compiled code is reached deterministically; sync no-op.
        engine.drain_compiles()

flip = Engine(
    flip_program(),
    JitConfig(hot_threshold=4, speculate=True, backend="py"),
    tuned_inliner(1.0),
)
flip_outcomes = [
    observe(flip, "Main", "drive", [i % 2 if i >= 10 else 0])
    for i in range(16)
]

osr = Engine(
    shapes_program(),
    JitConfig(hot_threshold=10**9, osr=True, osr_threshold=30,
              backend="py"),
    tuned_inliner(1.0),
)
osr_outcomes = [observe(osr, "Main", "run", []) for _ in range(2)]

trap = Engine(
    single_method_program(
        lambda b: b.const(100).load(0).div().retv()
    ),
    JitConfig(hot_threshold=3, backend="py"),
    tuned_inliner(1.0),
)
trap_outcomes = [observe(trap, "T", "f", [2 - i % 4]) for i in range(12)]

from tests.test_typespec import classify_program

ts = Engine(
    classify_program(),
    JitConfig(hot_threshold=4, speculate=True, typespec=True,
              backend="py"),
    tuned_inliner(1.0),
)
ts_outcomes = [
    observe(ts, "Main", "drive", [i % 2 if i >= 10 else 0])
    for i in range(16)
]

engines = (flip, osr, trap, ts)
result = {
    "flip": flip_outcomes,
    "osr": osr_outcomes,
    "trap": trap_outcomes,
    "ts": ts_outcomes,
    "output": [list(e.vm.output) for e in engines],
    "deopts": flip.deopt_count,
    "osr_entries": osr.osr_entry_count,
    "ts_deopts": ts.deopt_count,
    "async_installs": sum(e.async_installs for e in engines),
    "compilations": sum(e.compilation_count for e in engines),
    "py_execs": sum(e.py_exec_count for e in engines),
}
for e in engines:
    e.shutdown()
print(json.dumps(result))
"""


def _run_combo(bits):
    env = dict(os.environ)
    for (name, value), bit in zip(PINS, bits):
        env.pop(name, None)
        if bit:
            env[name] = value
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-c", CHILD],
        env=env,
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, "combo %r failed:\n%s" % (bits, proc.stderr)
    return json.loads(proc.stdout)


def test_async_pin_matrix_bit_identical():
    combos = [
        bits + (False, False)
        for bits in itertools.product((False, True), repeat=len(PINS) - 2)
    ] + BACKEND_PINNED_COMBOS + TYPESPEC_PINNED_COMBOS
    results = {bits: _run_combo(bits) for bits in combos}
    baseline = results[(False,) * len(PINS)]

    # Outcomes (values and trap kinds) and printed output are
    # bit-identical across all exercised combinations.
    for bits, result in results.items():
        assert result["flip"] == baseline["flip"], bits
        assert result["osr"] == baseline["osr"], bits
        assert result["trap"] == baseline["trap"], bits
        assert result["ts"] == baseline["ts"], bits
        assert result["output"] == baseline["output"], bits

    # The deopt protocol is compile-mode independent: within each
    # speculation setting, every combination observed the same deopts.
    for spec_off in (False, True):
        group = [
            result["deopts"]
            for bits, result in results.items()
            if bits[1] == spec_off
        ]
        assert all(count == group[0] for count in group), spec_off

    # Sanity: the trapping workload actually trapped, and kept trapping
    # after the method compiled.
    assert baseline["trap"][2][0] == "trap"
    assert baseline["trap"][10][0] == "trap"
    assert any(kind == "value" for kind, _ in baseline["trap"])

    # Sanity: the async bit exercised the background pipeline — every
    # async combination installed code off the queue; no sync
    # combination did.
    for bits, result in results.items():
        assert result["compilations"] > 0, bits
        if bits[0]:
            assert result["async_installs"] > 0, bits
        else:
            assert result["async_installs"] == 0, bits

    # Sanity: the pinned bits changed real behaviour — including the
    # backend pin: unpinned combinations served compiled calls from the
    # Python tier (the engines request backend="py"), pinned ones never
    # touched it.
    assert baseline["deopts"] == 1
    assert baseline["osr_entries"] >= 1
    assert baseline["ts_deopts"] >= 1
    assert baseline["py_execs"] > 0
    assert results[(False, True, False, False, False, False)]["deopts"] == 0
    assert results[(False, False, True, False, False, False)][
        "osr_entries"
    ] == 0
    for bits in BACKEND_PINNED_COMBOS:
        assert results[bits]["py_execs"] == 0, bits
    # The type guard never exists when either the speculation or the
    # typespec pin is set, so those combinations never deopt on it.
    for bits in results:
        if bits[1] or bits[5]:
            assert results[bits]["ts_deopts"] == 0, bits
