"""stmbench7 — software transactional memory on ScalaSTM.

STMBench7 runs operations over a shared object graph where every field
access goes through STM read/write barriers. We model the barrier tax:
``Ref`` cells accessed through a transaction object that logs reads and
writes (with conflict-detection bookkeeping), running a mix of
traversal and update operations over an assembly hierarchy. The barrier
methods are tiny and ubiquitous — precisely what aggressive inlining
into the operation bodies removes (paper: ≈3× over open-source Graal's
greedy inliner).
"""

DESCRIPTION = "STM read/write barriers over a shared assembly graph"
ITERATIONS = 14

SOURCE = """
class Ref {
  var value: int;
  var version: int;
  def init(v: int): void { this.value = v; this.version = 0; }
}

class Txn {
  var reads: int;
  var writes: int;
  var readStamp: int;
  def init(stamp: int): void {
    this.reads = 0; this.writes = 0; this.readStamp = stamp;
  }
  @inline def read(r: Ref): int {
    this.reads = this.reads + 1;
    return r.value;
  }
  @inline def write(r: Ref, v: int): void {
    this.writes = this.writes + 1;
    r.version = this.readStamp;
    r.value = v;
  }
}

class Part {
  var id: Ref;
  var weight: Ref;
  def init(id: int, weight: int): void {
    this.id = new Ref(id);
    this.weight = new Ref(weight);
  }
}

class Assembly {
  var parts: ArraySeq;
  var subAssemblies: ArraySeq;
  def init(): void {
    this.parts = new ArraySeq(4);
    this.subAssemblies = new ArraySeq(2);
  }
  def totalWeight(t: Txn): int {
    var sum: int = 0;
    var i: int = 0;
    while (i < this.parts.length()) {
      var p: Part = this.parts.get(i) as Part;
      sum = sum + t.read(p.weight);
      i = i + 1;
    }
    i = 0;
    while (i < this.subAssemblies.length()) {
      var a: Assembly = this.subAssemblies.get(i) as Assembly;
      sum = sum + a.totalWeight(t);
      i = i + 1;
    }
    return sum;
  }
  def rebalance(t: Txn, delta: int): void {
    var i: int = 0;
    while (i < this.parts.length()) {
      var p: Part = this.parts.get(i) as Part;
      t.write(p.weight, t.read(p.weight) + delta);
      i = i + 1;
    }
    i = 0;
    while (i < this.subAssemblies.length()) {
      var a: Assembly = this.subAssemblies.get(i) as Assembly;
      a.rebalance(t, delta);
      i = i + 1;
    }
  }
}

object Main {
  static var root: Assembly;
  static var clock: int;

  def build(depth: int, seed: int): Assembly {
    var a: Assembly = new Assembly();
    var i: int = 0;
    while (i < 3) {
      a.parts.add(new Part(seed * 10 + i, 5 + (seed + i) % 9));
      i = i + 1;
    }
    if (depth > 0) {
      i = 0;
      while (i < 3) {
        a.subAssemblies.add(Main.build(depth - 1, seed * 3 + i));
        i = i + 1;
      }
    }
    return a;
  }

  def run(): int {
    if (Main.root == null) { Main.root = Main.build(3, 1); Main.clock = 0; }
    var acc: int = 0;
    var op: int = 0;
    while (op < 6) {
      Main.clock = Main.clock + 1;
      var t: Txn = new Txn(Main.clock);
      if ((op & 3) == 0) {
        Main.root.rebalance(t, 1 - ((op & 7) >> 1));
      } else {
        acc = acc + Main.root.totalWeight(t);
      }
      acc = acc + t.reads + t.writes * 2;
      op = op + 1;
    }
    return acc;
  }
}
"""
