"""Composability of the environment pins.

``REPRO_SPECULATE=off``, ``REPRO_PRIORITY_CACHE=off``,
``REPRO_GRAPH_COPY=reference``, ``REPRO_OSR=off``,
``REPRO_BACKEND=machine`` and ``REPRO_TYPESPEC=off`` each pin one
engineering fast path back to its reference behaviour; every exercised
combination must be bit-identical on a pinned workload (same values,
same program output). The priority-cache and graph-copy pins are read
at module import time, so every combination runs in a fresh subprocess.

The first four pins run as the full sixteen-combination cross-product.
The backend and typespec pins are *sampled* on top (the py tier is
bit-identical by construction, cycles included; the typespec pin's
observable contract is exactly the speculation pin's), keeping the
subprocess count bounded instead of quadrupling to 64.
"""

import itertools
import json
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: (env var, pinned value) — bit i of a combination sets PINS[i].
PINS = [
    ("REPRO_SPECULATE", "off"),
    ("REPRO_PRIORITY_CACHE", "off"),
    ("REPRO_GRAPH_COPY", "reference"),
    ("REPRO_OSR", "off"),
    ("REPRO_BACKEND", "machine"),
    ("REPRO_TYPESPEC", "off"),
]

#: Sampled combinations with the backend pinned back to the machine
#: executor: the all-off / all-on corners plus each cycle-relevant pin
#: alone, so a backend/pin interaction in any cycle group would show.
BACKEND_PINNED_COMBOS = [
    (False, False, False, False, True, False),
    (True, False, False, False, True, False),
    (False, False, False, True, True, False),
    (True, True, True, True, True, False),
]

#: Sampled combinations with type-check speculation pinned off: alone,
#: stacked on the speculation pin (which already disables it — the
#: double-off corner must not diverge), and the everything-pinned
#: corner.
TYPESPEC_PINNED_COMBOS = [
    (False, False, False, False, False, True),
    (True, False, False, False, False, True),
    (True, True, True, True, True, True),
]

# The pinned workload, two parts:
#
# 1. The receiver-flip driver from the deopt tests: ten monomorphic
#    warmup iterations compile (and, unless pinned off, speculate in)
#    the driver, then alternating receivers refute the guard — so the
#    speculation pin changes real compiled-code paths, not just flags.
#
# 2. The shapes benchmark's 120-iteration loop on a second engine whose
#    dispatch threshold is unreachable: the *only* route into compiled
#    code is an OSR transfer at the loop backedge, so the OSR pin also
#    changes real compiled-code paths (loop finishes in the OSR
#    continuation vs. stays interpreted).
#
# 3. The classify driver from the typespec tests on a third engine:
#    monomorphic warmup lets the compiler guard the instanceof on the
#    profiled exact type, then alternating operand types refute it —
#    so the typespec pin changes real compiled-code paths too.
CHILD = r"""
import json

from repro.baselines import tuned_inliner
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from tests.test_deopt import flip_program
from tests.helpers import shapes_program

program = flip_program()
engine = Engine(
    program,
    JitConfig(hot_threshold=4, speculate=True, backend="py"),
    tuned_inliner(1.0),
)
values, cycles = [], []
for i in range(16):
    kind = i % 2 if i >= 10 else 0
    result = engine.run_iteration("Main", "drive", [kind])
    values.append(result.value)
    cycles.append(result.total_cycles)

osr_engine = Engine(
    shapes_program(),
    JitConfig(hot_threshold=10**9, osr=True, osr_threshold=30,
              backend="py"),
    tuned_inliner(1.0),
)
osr_values, osr_cycles = [], []
for _ in range(2):
    result = osr_engine.run_iteration("Main", "run")
    osr_values.append(result.value)
    osr_cycles.append(result.total_cycles)

from tests.test_typespec import classify_program

ts_engine = Engine(
    classify_program(),
    JitConfig(hot_threshold=4, speculate=True, typespec=True,
              backend="py"),
    tuned_inliner(1.0),
)
ts_values, ts_cycles = [], []
for i in range(16):
    kind = i % 2 if i >= 10 else 0
    result = ts_engine.run_iteration("Main", "drive", [kind])
    ts_values.append(result.value)
    ts_cycles.append(result.total_cycles)

print(json.dumps({
    "values": values,
    "cycles": cycles,
    "output": list(engine.vm.output),
    "deopts": engine.deopt_count,
    "osr_values": osr_values,
    "osr_cycles": osr_cycles,
    "osr_output": list(osr_engine.vm.output),
    "osr_entries": osr_engine.osr_entry_count,
    "ts_values": ts_values,
    "ts_cycles": ts_cycles,
    "ts_output": list(ts_engine.vm.output),
    "ts_deopts": ts_engine.deopt_count,
    "py_execs": engine.py_exec_count + osr_engine.py_exec_count
    + ts_engine.py_exec_count,
}))
"""


def _run_combo(bits):
    env = dict(os.environ)
    for (name, value), bit in zip(PINS, bits):
        env.pop(name, None)
        if bit:
            env[name] = value
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-c", CHILD],
        env=env,
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, "combo %r failed:\n%s" % (bits, proc.stderr)
    return json.loads(proc.stdout)


def test_env_pin_matrix_bit_identical():
    combos = [
        bits + (False, False)
        for bits in itertools.product((False, True), repeat=len(PINS) - 2)
    ] + BACKEND_PINNED_COMBOS + TYPESPEC_PINNED_COMBOS
    results = {bits: _run_combo(bits) for bits in combos}
    baseline = results[(False,) * len(PINS)]

    # Observables are bit-identical across all exercised combinations.
    for bits, result in results.items():
        assert result["values"] == baseline["values"], bits
        assert result["output"] == baseline["output"], bits
        assert result["osr_values"] == baseline["osr_values"], bits
        assert result["osr_output"] == baseline["osr_output"], bits
        assert result["ts_values"] == baseline["ts_values"], bits
        assert result["ts_output"] == baseline["ts_output"], bits

    # The cycle model may legitimately differ between speculative and
    # pinned-off runs (different compiled code), but the cache, copy
    # and backend pins are pure engineering knobs: within each
    # speculation setting the flip-driver cycles of every combination
    # (backend-pinned ones included) agree exactly.
    for spec_off in (False, True):
        group = [
            result["cycles"]
            for bits, result in results.items()
            if bits[0] == spec_off
        ]
        assert all(cycles == group[0] for cycles in group), spec_off

    # Likewise the loop workload: its cycles depend only on whether the
    # frame transferred into OSR code (the dispatch threshold is
    # unreachable, so no other tier change can interfere).
    for osr_off in (False, True):
        group = [
            result["osr_cycles"]
            for bits, result in results.items()
            if bits[3] == osr_off
        ]
        assert all(cycles == group[0] for cycles in group), osr_off

    # The classify driver's cycles depend only on whether its guard was
    # ever speculated: the typespec pin, the speculation pin (which
    # gates the frame-state capture the guards need) and the config bit
    # collapse to one effective boolean.
    for ts_off in (False, True):
        group = [
            result["ts_cycles"]
            for bits, result in results.items()
            if (bits[0] or bits[5]) == ts_off
        ]
        assert all(cycles == group[0] for cycles in group), ts_off

    # Sanity: the pinned bits changed real behaviour — unpinned runs
    # took a deopt on the receiver flip, transferred the hot loop into
    # compiled code mid-method, refuted the classify guard on the first
    # Circle, and served compiled calls from the Python tier (the
    # engines request backend="py"); pinned runs never did.
    assert baseline["deopts"] == 1
    assert baseline["osr_entries"] >= 1
    assert baseline["ts_deopts"] >= 1
    assert baseline["py_execs"] > 0
    assert results[(True,) + (False,) * 5]["deopts"] == 0
    assert results[(False, False, False, True, False, False)][
        "osr_entries"
    ] == 0
    for bits in BACKEND_PINNED_COMBOS:
        assert results[bits]["py_execs"] == 0, bits
    for bits in results:
        if bits[0] or bits[5]:
            assert results[bits]["ts_deopts"] == 0, bits
