"""The flight recorder: bounded eviction, JSONL round-trip, engine
provenance, dump-on-crash — and, critically, bit-identical cycles with
the recorder off (NULL_OBS) versus on."""

import json

import pytest

from repro.errors import VMError
from repro.jit import Engine, JitConfig
from repro.lang import compile_source
from repro.baselines import tuned_inliner
from repro.obs import (
    NULL_FLIGHT,
    NULL_OBS,
    FlightRecorder,
    Observability,
    read_flight_jsonl,
)

SOURCE = """
object Main {
  def helper(x: int): int { return x * 3 + 1; }
  def crash(d: int): int { return 10 / d; }
  def run(): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < 50) { acc = acc + Main.helper(i); i = i + 1; }
    return acc;
  }
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE)


def run_engine(program, iterations=8, obs=None):
    engine = Engine(
        program,
        JitConfig(hot_threshold=20),
        inliner=tuned_inliner(0.1),
        obs=obs,
    )
    results = [engine.run_iteration("Main", "run") for _ in range(iterations)]
    return engine, results


class TestRing:
    def test_records_in_order_with_monotonic_seq(self):
        flight = FlightRecorder(capacity=10)
        for i in range(5):
            flight.record("k", i=i)
        records = flight.records()
        assert [r["attrs"]["i"] for r in records] == [0, 1, 2, 3, 4]
        assert [r["seq"] for r in records] == [0, 1, 2, 3, 4]
        assert all(r["kind"] == "k" for r in records)
        assert len(flight) == 5

    def test_eviction_drops_oldest_first(self):
        flight = FlightRecorder(capacity=3)
        for i in range(7):
            flight.record("k", i=i)
        records = flight.records()
        # Only the newest `capacity` records survive, still in order,
        # and seq keeps counting from the start of the run.
        assert [r["attrs"]["i"] for r in records] == [4, 5, 6]
        assert [r["seq"] for r in records] == [4, 5, 6]
        assert len(flight) == 3
        assert flight.recorded == 7
        assert flight.evicted == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_of_kind_and_clear(self):
        flight = FlightRecorder()
        flight.record("a", x=1)
        flight.record("b", x=2)
        flight.record("a", x=3)
        assert [r["attrs"]["x"] for r in flight.of_kind("a")] == [1, 3]
        flight.clear()
        assert len(flight) == 0

    def test_metrics_meter_ring_traffic(self):
        obs = Observability(flight_capacity=2)
        obs.flight.record("k")
        obs.flight.record("k")
        obs.flight.record("k")
        assert obs.metrics.value("flight.records") == 3
        assert obs.metrics.value("flight.evicted") == 1


class TestJsonlRoundTrip:
    def test_save_and_read_back(self, tmp_path):
        flight = FlightRecorder()
        flight.record("deopt", method="A.b", reason="class-check")
        flight.record("jit.install", method="A.b", nodes=7)
        path = str(tmp_path / "flight.jsonl")
        flight.save(path)
        replayed = read_flight_jsonl(path)
        assert [r["kind"] for r in replayed] == ["deopt", "jit.install"]
        assert replayed[0]["attrs"]["reason"] == "class-check"
        assert [r["seq"] for r in replayed] == [0, 1]

    def test_dump_uses_event_log_record_shape(self, tmp_path):
        flight = FlightRecorder()
        flight.record("deopt", method="A.b")
        path = str(tmp_path / "flight.jsonl")
        flight.save(path)
        with open(path) as handle:
            line = json.loads(handle.readline())
        assert line["type"] == "event"
        assert line["name"] == "deopt"
        assert line["span"] is None
        assert line["attrs"] == {"method": "A.b"}

    def test_reader_accepts_full_event_logs(self, tmp_path, program):
        # A `stats --events`-style log contains span begin/end records;
        # the flight reader must skip those and keep point events.
        obs = Observability()
        run_engine(program, obs=obs)
        path = str(tmp_path / "events.jsonl")
        obs.events.save(path)
        records = read_flight_jsonl(path)
        assert records, "expected point events in the log"
        kinds = {r["kind"] for r in records}
        assert "jit.install" in kinds
        assert all("kind" in r and "attrs" in r for r in records)


class TestEngineProvenance:
    def test_compilations_are_recorded(self, program):
        obs = Observability()
        run_engine(program, obs=obs)
        kinds = [r["kind"] for r in obs.flight.records()]
        assert "jit.trigger" in kinds
        assert "jit.install" in kinds
        assert "inline.begin" in kinds
        assert any(k.startswith("inline.") for k in kinds)

    def test_decisions_carry_root_provenance(self, program):
        obs = Observability()
        run_engine(program, obs=obs)
        expands = obs.flight.of_kind("inline.expand")
        inlines = obs.flight.of_kind("inline.inline")
        assert expands and inlines
        for record in expands + inlines:
            assert record["attrs"]["root"] is not None
            assert "path" in record["attrs"]
            assert "depth" in record["attrs"]

    def test_dump_on_crash_writes_ring(self, tmp_path, program):
        path = str(tmp_path / "crash.jsonl")
        obs = Observability()
        engine = Engine(
            program,
            JitConfig(hot_threshold=20, flight_dump=path),
            inliner=tuned_inliner(0.1),
            obs=obs,
        )
        engine.run_iteration("Main", "run")
        with pytest.raises(VMError):
            engine.call("Main", "crash", (0,))
        records = read_flight_jsonl(path)
        traps = [r for r in records if r["kind"] == "trap"]
        assert traps
        assert traps[-1]["attrs"]["method"] == "Main.crash"
        assert traps[-1]["attrs"]["error"] == "DivisionByZeroTrap"
        dumps = [r for r in records if r["kind"] == "flight.dump"]
        assert dumps and dumps[-1]["attrs"]["trigger"] == "trap"

    def test_dump_flight_on_demand(self, tmp_path, program):
        obs = Observability()
        engine, _ = run_engine(program, obs=obs)
        path = str(tmp_path / "ring.jsonl")
        engine.dump_flight(path)
        assert read_flight_jsonl(path)
        assert obs.metrics.value("flight.dumps") == 1


class TestNullFlightIsInert:
    def test_record_is_a_no_op(self):
        NULL_FLIGHT.record("anything", x=1)
        assert len(NULL_FLIGHT) == 0
        assert NULL_FLIGHT.records() == []
        assert NULL_FLIGHT.enabled is False

    def test_null_obs_carries_null_flight(self):
        assert NULL_OBS.flight is NULL_FLIGHT

    def test_save_refuses(self, tmp_path):
        with pytest.raises(ValueError):
            NULL_FLIGHT.save(str(tmp_path / "nope.jsonl"))

    def test_cycles_bit_identical_with_recorder_on_vs_off(self, program):
        """The tentpole invariant: recording provenance must not
        perturb the deterministic cycle model."""
        _, plain = run_engine(program)                     # NULL_OBS
        _, observed = run_engine(program, obs=Observability())
        assert [r.total_cycles for r in plain] == [
            r.total_cycles for r in observed
        ]
        assert [r.value for r in plain] == [r.value for r in observed]
        assert [r.compilations for r in plain] == [
            r.compilations for r in observed
        ]

    def test_cycles_identical_across_flight_capacities(self, program):
        """Eviction pressure (tiny ring) must not change behaviour
        either — the ring is telemetry, never model state."""
        _, roomy = run_engine(program, obs=Observability())
        _, tiny = run_engine(
            program, obs=Observability(flight_capacity=4)
        )
        assert [r.total_cycles for r in roomy] == [
            r.total_cycles for r in tiny
        ]
