"""lusearch — Lucene query evaluation.

lusearch intersects posting lists and scores hits. We model the scorer:
sorted posting arrays, a leapfrog intersection through a ``Scorer``
abstraction, and a top-k selection. C2 beats Graal on lusearch in the
paper — the workload is array-bound with little abstraction to
collapse, so inliner differences should stay small here.
"""

DESCRIPTION = "sorted posting-list intersection with scoring"
ITERATIONS = 12

SOURCE = """
class Postings {
  var docs: int[];
  var freqs: int[];
  var size: int;
  def init(size: int): void {
    this.docs = new int[size];
    this.freqs = new int[size];
    this.size = size;
  }
}

trait Scorer {
  def score(freqA: int, freqB: int): int;
}

class TfScorer implements Scorer {
  def score(freqA: int, freqB: int): int { return freqA * freqB; }
}

class SumScorer implements Scorer {
  def score(freqA: int, freqB: int): int { return freqA + freqB; }
}

object Main {
  static var termA: Postings;
  static var termB: Postings;

  def makePostings(n: int, stride: int, salt: int): Postings {
    var p: Postings = new Postings(n);
    var doc: int = salt;
    var i: int = 0;
    while (i < n) {
      doc = doc + 1 + ((doc * stride) % 3);
      p.docs[i] = doc;
      p.freqs[i] = 1 + ((doc * salt) % 7);
      i = i + 1;
    }
    return p;
  }

  def intersect(a: Postings, b: Postings, s: Scorer): int {
    var total: int = 0;
    var i: int = 0;
    var j: int = 0;
    while (i < a.size && j < b.size) {
      var da: int = a.docs[i];
      var db: int = b.docs[j];
      if (da == db) {
        total = total + s.score(a.freqs[i], b.freqs[j]);
        i = i + 1;
        j = j + 1;
      } else {
        if (da < db) { i = i + 1; } else { j = j + 1; }
      }
    }
    return total;
  }

  def run(): int {
    if (Main.termA == null) {
      Main.termA = Main.makePostings(500, 3, 5);
      Main.termB = Main.makePostings(400, 5, 3);
    }
    var tf: Scorer = new TfScorer();
    var sum: Scorer = new SumScorer();
    var acc: int = 0;
    var round: int = 0;
    while (round < 2) {
      acc = acc + Main.intersect(Main.termA, Main.termB, tf);
      acc = acc + Main.intersect(Main.termB, Main.termA, sum);
      round = round + 1;
    }
    return acc;
  }
}
"""
