"""luindex — Lucene document indexing.

luindex tokenizes documents and builds postings. We model the indexing
pipeline on integer token streams: generate a synthetic document,
normalize tokens through a small analyzer chain (virtual filters), and
update term-frequency postings in a hash map. The paper reports ≈13%
improvement over C2 on luindex.
"""

DESCRIPTION = "token analyzer chain feeding term-frequency postings"
ITERATIONS = 12

SOURCE = """
trait TokenFilter {
  def apply(token: int): int;
}

class LowerCase implements TokenFilter {
  def apply(token: int): int { return token & 1023; }
}

class StemFilter implements TokenFilter {
  def apply(token: int): int {
    var t: int = token;
    if (t % 7 == 0) { t = t / 7; }
    if (t % 3 == 0) { t = t / 3; }
    return t;
  }
}

class StopFilter implements TokenFilter {
  def apply(token: int): int {
    if (token < 8) { return 0 - 1; }
    return token;
  }
}

class Analyzer {
  var filters: ArraySeq;
  def init(): void { this.filters = new ArraySeq(4); }
  def add(f: TokenFilter): void { this.filters.add(f); }
  def analyze(token: int): int {
    var t: int = token;
    var i: int = 0;
    while (i < this.filters.length()) {
      if (t < 0) { return t; }
      var f: TokenFilter = this.filters.get(i) as TokenFilter;
      t = f.apply(t);
      i = i + 1;
    }
    return t;
  }
}

object Main {
  static var analyzer: Analyzer;

  def setup(): void {
    var a: Analyzer = new Analyzer();
    a.add(new LowerCase());
    a.add(new StemFilter());
    a.add(new StopFilter());
    Main.analyzer = a;
  }

  def run(): int {
    if (Main.analyzer == null) { Main.setup(); }
    var postings: IntIntMap = new IntIntMap(256);
    var doc: int = 0;
    var token: int = 12345;
    var indexed: int = 0;
    while (doc < 2) {
      var w: int = 0;
      while (w < 150) {
        token = (token * 1103515245 + 12345) & 65535;
        var term: int = Main.analyzer.analyze(token);
        if (term >= 0) {
          postings.put(term, postings.get(term, 0) + 1);
          indexed = indexed + 1;
        }
        w = w + 1;
      }
      doc = doc + 1;
    }
    return indexed + postings.get(100, 0) + postings.get(500, 0);
  }
}
"""
