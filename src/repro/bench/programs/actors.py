"""actors — Scala actors message passing.

Mailbox-driven actors exchanging boxed messages through a scheduler
abstraction: every send is an allocation, every receive a double
dispatch through the behavior trait, and the scheduler loop drives it
all through `Seq.foreach` with a lambda. Deep inlining trials are worth
≈8% here in the paper.
"""

DESCRIPTION = "mailbox actors with behavior dispatch under a scheduler loop"
ITERATIONS = 14

SOURCE = """
class Message {
  var kind: int;
  var payload: int;
  var sender: int;
  def init(kind: int, payload: int, sender: int): void {
    this.kind = kind; this.payload = payload; this.sender = sender;
  }
}

trait Behavior {
  def receive(m: Message, ctx: Scheduler): void;
}

class Actor {
  var id: int;
  var mailbox: ArraySeq;
  var behavior: Behavior;
  var processed: int;
  def init(id: int, behavior: Behavior): void {
    this.id = id;
    this.mailbox = new ArraySeq(8);
    this.behavior = behavior;
    this.processed = 0;
  }
}

class Scheduler {
  var actors: ArraySeq;
  var delivered: int;
  def init(): void { this.actors = new ArraySeq(8); this.delivered = 0; }
  def spawn(b: Behavior): Actor {
    var a: Actor = new Actor(this.actors.length(), b);
    this.actors.add(a);
    return a;
  }
  def send(target: int, m: Message): void {
    var a: Actor = this.actors.get(target) as Actor;
    a.mailbox.add(m);
    this.delivered = this.delivered + 1;
  }
  def drainOne(a: Actor): void {
    var box: ArraySeq = a.mailbox;
    a.mailbox = new ArraySeq(8);
    var self: Scheduler = this;
    box.foreach(fun (msg: Message): void {
      a.behavior.receive(msg, self);
      a.processed = a.processed + 1;
    });
  }
  def step(): void {
    var self: Scheduler = this;
    this.actors.foreach(fun (obj: Actor): void { self.drainOne(obj); });
  }
}

class PingPong implements Behavior {
  var peer: int;
  var hops: int;
  def init(peer: int): void { this.peer = peer; this.hops = 0; }
  def receive(m: Message, ctx: Scheduler): void {
    this.hops = this.hops + 1;
    if (m.payload > 0) {
      ctx.send(this.peer, new Message(0, m.payload - 1, 0));
    }
  }
}

class Accumulator implements Behavior {
  var total: int;
  def init(): void { this.total = 0; }
  def receive(m: Message, ctx: Scheduler): void {
    this.total = this.total + m.payload;
    if ((m.payload & 7) == 0 && m.payload > 0) {
      ctx.send(m.sender, new Message(1, m.payload / 2, 0));
    }
  }
}

object Main {
  def run(): int {
    var sched: Scheduler = new Scheduler();
    var ping: Actor = sched.spawn(new PingPong(1));
    var pong: Actor = sched.spawn(new PingPong(0));
    var acc: Actor = sched.spawn(new Accumulator());
    sched.send(0, new Message(0, 40, 2));
    var i: int = 0;
    while (i < 60) {
      sched.send(2, new Message(1, i, 0));
      sched.step();
      i = i + 1;
    }
    var accB: Behavior = acc.behavior;
    var total: int = (accB as Accumulator).total;
    return total + sched.delivered + ping.processed + pong.processed;
  }
}
"""
