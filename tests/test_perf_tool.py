"""The wall-clock perf harness and Measurement.wall_seconds."""

import json

from repro.bench.measurement import Measurement, measure_benchmark
from repro.tools import perf
from tests.helpers import shapes_program


def test_measurement_has_wall_seconds():
    result = Measurement("b", "c")
    assert result.wall_seconds == 0.0
    assert "wall_seconds" in result.as_dict()


def test_measure_benchmark_records_wall_time():
    result = measure_benchmark(
        shapes_program(),
        inliner_factory=None,
        instances=2,
        iterations=3,
    )
    assert result.wall_seconds > 0.0
    assert result.as_dict()["wall_seconds"] == result.wall_seconds


def test_measure_pair_checks_semantics():
    from repro.jit.config import JitConfig

    program = shapes_program()
    variant = {
        "name": "classic",
        "config": lambda: JitConfig(
            compile_enabled=False, interp_predecode=False
        ),
        "inliner": None,
        "fast_copy": True,
    }
    fast = dict(variant, name="predecode",
                config=lambda: JitConfig(
                    compile_enabled=False, interp_predecode=True
                ))
    result = perf._measure_pair(
        program, iterations=2, repeats=1,
        base=variant, fast=fast, progress=False,
    )
    assert result["semantics_identical"] is True
    assert result["clock"] == "wall"
    assert result["baseline"]["seconds"] >= 0.0
    assert result["fast"]["seconds"] >= 0.0


def test_cli_quick_writes_json(tmp_path):
    out = tmp_path / "BENCH_wall.json"
    assert perf.main(["--quick", "-o", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["quick"] is True
    workloads = payload["workloads"]
    kinds = {w["workload"] for w in workloads}
    assert kinds == {
        "interpreter-bound", "py-backend", "compile-bound", "mixed",
        "serve-mixed",
    }
    for w in workloads:
        assert w["semantics_identical"] is True
        assert w["baseline"]["seconds"] > 0.0
        assert w["fast"]["seconds"] > 0.0


def test_render_results_marks_divergence():
    rows = [
        {
            "workload": "mixed",
            "benchmark": "x",
            "baseline": {"name": "a", "seconds": 1.0},
            "fast": {"name": "b", "seconds": 0.5},
            "speedup": 2.0,
            "semantics_identical": False,
        }
    ]
    rendered = perf.render_results(rows)
    assert "NO" in rendered
