"""Figure 7 — adaptive vs fixed *inlining* thresholds.

The paper sweeps T_i ∈ {1k, 3k, 6k}: small fixed budgets strangle
benchmarks that need large optimizable regions, while T_i = 6000 "works
well for jython, factorie and gauss-mix, but ... is an extremely bad
choice for most other benchmarks" (over-inlining: optimizer budget and
instruction-cache pressure). The adaptive threshold (Eq. 12) needs no
per-benchmark tuning.
"""

from benchmarks.conftest import INSTANCES, figure_benchmarks
from repro.bench.configs import TI_SWEEP
from repro.bench.harness import print_table, run_matrix

CONFIGS = ["incremental"] + ["ti-%d" % ti for ti in TI_SWEEP]


def test_fig7_inlining_threshold(benchmark, steady_engine_factory):
    results = run_matrix(
        CONFIGS, benchmarks=figure_benchmarks(), instances=INSTANCES
    )
    print_table(
        results, CONFIGS, metric="time",
        title="Figure 7: adaptive vs fixed T_i (steady cycles)",
    )
    print_table(
        results, CONFIGS, metric="code",
        title="Figure 7 companion: installed code",
    )

    best = {
        name: min(m.mean_cycles for m in row.values())
        for name, row in results.items()
    }

    # Claim A (paper): every fixed T_i is a bad choice somewhere —
    # "T_i = 6000 works well for jython, factorie and gauss-mix, but
    # this value is an extremely bad choice for most other benchmarks".
    for ti in TI_SWEEP:
        config = "ti-%d" % ti
        losses = [
            results[name][config].mean_cycles / best[name] for name in results
        ]
        assert max(losses) > 1.05, (
            "fixed T_i=%d dominated everywhere — sweep not discriminating" % ti
        )

    # Claim B (paper): the adaptive threshold needs no per-benchmark
    # tuning — it is competitive *overall*, with at most a couple of
    # benchmarks preferring a specific fixed budget (the paper itself
    # reports scalatest/jython/dec-tree preferring fixed values).
    from benchmarks.conftest import geomean

    ratios = {
        name: results[name]["incremental"].mean_cycles / best[name]
        for name in results
    }
    print("adaptive-vs-best-fixed ratios: %s" % {
        k: round(v, 2) for k, v in sorted(ratios.items())
    })
    assert geomean(ratios.values()) < 1.12, (
        "adaptive is %.3fx off best fixed overall" % geomean(ratios.values())
    )
    outliers = [name for name, ratio in ratios.items() if ratio > 1.40]
    assert len(outliers) <= max(1, len(results) // 6), (
        "adaptive badly beaten on too many benchmarks: %r" % outliers
    )

    # Code size grows monotonically-ish with T_i: the largest budget
    # installs at least as much code as the smallest on most benchmarks
    # (over-inlining is what makes big fixed budgets slow).
    grew = sum(
        1
        for name in results
        if results[name]["ti-%d" % TI_SWEEP[-1]].installed_size
        >= results[name]["ti-%d" % TI_SWEEP[0]].installed_size
    )
    assert grew >= len(results) // 2

    engine = steady_engine_factory("scalariform", "incremental")
    benchmark(engine.run_iteration, "Main", "run")
