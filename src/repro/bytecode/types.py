"""Type descriptors used in signatures, fields and the IR stamp lattice.

Types are plain strings, chosen for readability in dumps:

- ``"int"`` — 64-bit-style integer (also used for booleans)
- ``"void"`` — only as a return type
- ``"Foo"`` — reference to class or interface ``Foo``
- ``"int[]"`` / ``"Foo[]"`` — arrays; arrays of arrays are allowed

The helpers below centralize the string plumbing so nothing else in the
code base parses type strings by hand.
"""

INT = "int"
VOID = "void"
OBJECT = "Object"


def is_int(t):
    """True for the primitive integer type."""
    return t == INT


def is_void(t):
    return t == VOID


def is_array(t):
    return t.endswith("[]")


def is_ref(t):
    """True for any reference type: classes, interfaces and arrays."""
    return t != INT and t != VOID


def array_of(elem):
    """The array type with element type *elem*."""
    return elem + "[]"


def elem_of(t):
    """The element type of array type *t*."""
    if not is_array(t):
        raise ValueError("not an array type: %r" % (t,))
    return t[:-2]


def base_class(t):
    """The underlying class name of a non-array reference type."""
    if is_array(t) or not is_ref(t):
        raise ValueError("not a class type: %r" % (t,))
    return t
