"""neo4j — graph database queries.

Neo4J traversals walk adjacency through relationship/label predicates.
We model a property graph in CSR form with a traversal cursor
abstraction: 2-hop friend-of-friend counting with label filters, and a
weighted shortest-path relaxation sweep — predicate objects and cursor
methods in the hot loop. (Paper: ≈6.5% improvement.)
"""

DESCRIPTION = "CSR graph traversals with predicate and cursor abstractions"
ITERATIONS = 14

SOURCE = """
class Graph {
  var offsets: int[];
  var targets: int[];
  var labels: int[];
  var n: int;
  def init(n: int, degree: int): void {
    this.n = n;
    this.offsets = new int[n + 1];
    this.targets = new int[n * degree];
    this.labels = new int[n];
    var x: int = 7;
    var e: int = 0;
    var v: int = 0;
    while (v < n) {
      this.offsets[v] = e;
      this.labels[v] = v % 5;
      var d: int = 0;
      while (d < degree) {
        x = (x * 33 + 11) % 1021;
        this.targets[e] = x % n;
        e = e + 1;
        d = d + 1;
      }
      v = v + 1;
    }
    this.offsets[n] = e;
  }
  @inline def degreeOf(v: int): int { return this.offsets[v + 1] - this.offsets[v]; }
  @inline def neighbor(v: int, i: int): int { return this.targets[this.offsets[v] + i]; }
}

trait NodePredicate {
  def accept(g: Graph, v: int): bool;
}

class LabelIs implements NodePredicate {
  var label: int;
  def init(label: int): void { this.label = label; }
  def accept(g: Graph, v: int): bool { return g.labels[v] == this.label; }
}

class HighDegree implements NodePredicate {
  var floor: int;
  def init(floor: int): void { this.floor = floor; }
  def accept(g: Graph, v: int): bool { return g.degreeOf(v) >= this.floor; }
}

object Main {
  static var graph: Graph;

  def twoHopCount(g: Graph, start: int, p: NodePredicate): int {
    var count: int = 0;
    var i: int = 0;
    while (i < g.degreeOf(start)) {
      var mid: int = g.neighbor(start, i);
      var j: int = 0;
      while (j < g.degreeOf(mid)) {
        var far: int = g.neighbor(mid, j);
        if (far != start && p.accept(g, far)) { count = count + 1; }
        j = j + 1;
      }
      i = i + 1;
    }
    return count;
  }

  def relax(g: Graph, dist: int[]): int {
    var changed: int = 0;
    var v: int = 0;
    while (v < g.n) {
      var i: int = 0;
      while (i < g.degreeOf(v)) {
        var u: int = g.neighbor(v, i);
        var w: int = 1 + ((v + u) & 3);
        if (dist[v] + w < dist[u]) { dist[u] = dist[v] + w; changed = changed + 1; }
        i = i + 1;
      }
      v = v + 1;
    }
    return changed;
  }

  def run(): int {
    if (Main.graph == null) { Main.graph = new Graph(120, 6); }
    var g: Graph = Main.graph;
    var labelPred: NodePredicate = new LabelIs(2);
    var degPred: NodePredicate = new HighDegree(6);
    var acc: int = 0;
    var q: int = 0;
    while (q < 5) {
      acc = acc + Main.twoHopCount(g, (q * 17) % g.n, labelPred);
      acc = acc + Main.twoHopCount(g, (q * 31) % g.n, degPred);
      q = q + 1;
    }
    var dist: int[] = new int[g.n];
    var v: int = 0;
    while (v < g.n) { dist[v] = 100000; v = v + 1; }
    dist[0] = 0;
    var sweep: int = 0;
    while (sweep < 2) {
      acc = acc + Main.relax(g, dist);
      sweep = sweep + 1;
    }
    return acc + dist[g.n - 1];
  }
}
"""
