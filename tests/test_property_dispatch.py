"""Property tests for polymorphic dispatch under every inlining policy.

Generates random class hierarchies (a trait with N implementations,
each with its own arithmetic body) and random dispatch mixes, then
checks that all tiers and all policies agree with the interpreter —
hammering receiver profiling, typeswitch emission and fallbacks.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import C2Inliner, GreedyInliner, tuned_inliner
from repro.interp import Interpreter
from repro.jit import Engine, JitConfig
from repro.lang import compile_source
from repro.runtime import VMState

_BODIES = [
    "return x + %d;",
    "return x * %d;",
    "return x - %d;",
    "return (x & %d) + 1;",
    "return x * x + %d;",
]


@st.composite
def dispatch_programs(draw):
    num_classes = draw(st.integers(2, 5))
    classes = []
    for index in range(num_classes):
        body = draw(st.sampled_from(_BODIES)) % draw(st.integers(1, 9))
        classes.append(
            "class Impl%d implements Op { def apply(x: int): int { %s } }"
            % (index, body)
        )
    # A random (deterministic) receiver schedule: which impl serves
    # which loop index, by modulus bucketing.
    modulus = draw(st.integers(2, 6))
    buckets = [draw(st.integers(0, num_classes - 1)) for _ in range(modulus)]
    schedule = " ".join(
        "if (i %% %d == %d) { op = ops[%d]; }" % (modulus, bucket_index, impl)
        for bucket_index, impl in enumerate(buckets)
    )
    installs = " ".join(
        "ops[%d] = new Impl%d;" % (i, i) for i in range(num_classes)
    )
    loop_count = draw(st.integers(20, 60))
    source = """
    trait Op { def apply(x: int): int; }
    %s
    object Main {
      def run(): int {
        var ops: Op[] = new Op[%d];
        %s
        var acc: int = 0;
        var i: int = 0;
        while (i < %d) {
          var op: Op = ops[0];
          %s
          acc = acc + op.apply(i);
          i = i + 1;
        }
        return acc;
      }
    }
    """ % ("\n".join(classes), num_classes, installs, loop_count, schedule)
    return source


POLICIES = [
    lambda: None,
    GreedyInliner,
    C2Inliner,
    lambda: tuned_inliner(0.1),
]


class TestDispatchAgreement:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(dispatch_programs())
    def test_all_policies_agree(self, source):
        program = compile_source(source)
        vm = VMState(program)
        expected = Interpreter(vm).call_static("Main", "run")
        for factory in POLICIES:
            engine = Engine(
                program, JitConfig(hot_threshold=3), inliner=factory()
            )
            for _ in range(5):
                result = engine.run_iteration("Main", "run")
                assert result.value == expected
