"""SSA node classes.

Every value-producing instruction is a :class:`Node`; SSA means a value
*is* the node that computes it — inputs are direct references to other
nodes. Nodes live in exactly one basic block (except parameters, which
belong to the graph), and each block ends with one terminator node.

Nodes carry a :class:`~repro.ir.stamps.Stamp` describing what the
compiler knows about their value; canonicalization refines stamps and
replaces nodes whose stamp pins them to a constant.
"""

from repro.bytecode.opcodes import Op
from repro.ir import stamps as st


class Node:
    """Base class of all IR nodes.

    Attributes:
        id: unique within the graph (assigned at registration).
        block: owning :class:`~repro.ir.graph.Block` or None for params.
        inputs: list of input nodes (positional meaning per subclass).
        stamp: the node's abstract value.
        uses: set of nodes that have this node as an input.
    """

    __slots__ = ("id", "block", "inputs", "stamp", "uses")

    #: True when the node has no side effect, no memory dependence and
    #: no trap — such nodes may be deduplicated by value numbering and
    #: removed when unused.
    is_pure = False

    #: True for block terminators.
    is_terminator = False

    def __init__(self, inputs, stamp):
        self.id = -1
        self.block = None
        self.inputs = list(inputs)
        self.stamp = stamp
        self.uses = set()
        for node in self.inputs:
            if node is not None:
                node.uses.add(self)

    # -- input management -------------------------------------------------

    def set_input(self, index, new):
        old = self.inputs[index]
        if old is new:
            return
        self.inputs[index] = new
        if old is not None and old not in self.inputs:
            old.uses.discard(self)
        if new is not None:
            new.uses.add(self)

    def replace_input(self, old, new):
        for index, node in enumerate(self.inputs):
            if node is old:
                self.inputs[index] = new
                if new is not None:
                    new.uses.add(self)
        old.uses.discard(self)

    def clear_inputs(self):
        for node in self.inputs:
            if node is not None:
                node.uses.discard(self)
        self.inputs = []

    # -- introspection ---------------------------------------------------

    def value_number_key(self):
        """Hashable key identifying the computation, or None if not
        value-numberable."""
        return None

    @property
    def produces_value(self):
        return self.stamp.kind not in (st.Stamp.VOID,)

    def brief(self):
        return type(self).__name__.replace("Node", "")

    def __repr__(self):
        return "%s#%d" % (self.brief(), self.id)


# ---------------------------------------------------------------------------
# Values without inputs
# ---------------------------------------------------------------------------


class ConstIntNode(Node):
    """An integer constant."""

    __slots__ = ("value",)
    is_pure = True

    def __init__(self, value):
        super().__init__([], st.constant_int(value))
        self.value = value

    def value_number_key(self):
        return ("const", self.value)

    def brief(self):
        return "Const(%d)" % self.value


class ConstNullNode(Node):
    """The null reference constant."""

    is_pure = True

    def __init__(self):
        super().__init__([], st.null_stamp())

    def value_number_key(self):
        return ("null",)

    def brief(self):
        return "Null"


class ParamNode(Node):
    """A method parameter (receiver is parameter 0 of instance methods)."""

    __slots__ = ("index",)
    is_pure = True

    def __init__(self, index, stamp):
        super().__init__([], stamp)
        self.index = index

    def brief(self):
        return "Param(%d)" % self.index


# ---------------------------------------------------------------------------
# Arithmetic and comparisons
# ---------------------------------------------------------------------------


class BinOpNode(Node):
    """Binary integer arithmetic; ``op`` is a bytecode mnemonic.

    DIV and REM can trap and are therefore not pure unless the divisor
    is a non-zero constant (checked dynamically via :attr:`is_pure_now`).
    """

    __slots__ = ("op",)

    def __init__(self, op, a, b):
        super().__init__([a, b], st.int_stamp())
        self.op = op

    @property
    def is_pure(self):
        if self.op in (Op.DIV, Op.REM):
            divisor = self.inputs[1].stamp
            return divisor.const is not None and divisor.const != 0
        return True

    def value_number_key(self):
        if not self.is_pure:
            return None
        a, b = self.inputs[0].id, self.inputs[1].id
        if self.op in (Op.ADD, Op.MUL, Op.AND, Op.OR, Op.XOR) and a > b:
            a, b = b, a  # commutative normalization
        return ("bin", self.op, a, b)

    def brief(self):
        return self.op.capitalize()


class NegNode(Node):
    """Integer negation."""

    is_pure = True

    def __init__(self, value):
        super().__init__([value], st.int_stamp())

    def value_number_key(self):
        return ("neg", self.inputs[0].id)


class CompareNode(Node):
    """Integer or reference comparison producing 0/1."""

    __slots__ = ("op",)
    is_pure = True

    def __init__(self, op, a, b):
        super().__init__([a, b], st.int_stamp())
        self.op = op

    def value_number_key(self):
        a, b = self.inputs[0].id, self.inputs[1].id
        if self.op in (Op.EQ, Op.NE, Op.REF_EQ, Op.REF_NE) and a > b:
            a, b = b, a
        return ("cmp", self.op, a, b)

    def brief(self):
        return self.op.capitalize()


# ---------------------------------------------------------------------------
# Phis
# ---------------------------------------------------------------------------


class PhiNode(Node):
    """A phi; input *i* flows in from predecessor edge *i* of its block."""

    def __init__(self, inputs, stamp):
        super().__init__(inputs, stamp)

    def add_input(self, node):
        self.inputs.append(node)
        if node is not None:
            node.uses.add(self)

    def remove_input(self, index):
        old = self.inputs.pop(index)
        if old is not None and old not in self.inputs:
            old.uses.discard(self)

    def recompute_stamp(self, program=None):
        stamp = st.BOTTOM_STAMP
        for node in self.inputs:
            if node is not None and node is not self:
                stamp = stamp.meet(node.stamp, program)
        self.stamp = stamp

    def brief(self):
        return "Phi"


# ---------------------------------------------------------------------------
# Objects, arrays, fields
# ---------------------------------------------------------------------------


class NewNode(Node):
    """Object allocation — the resulting stamp is exact and non-null."""

    __slots__ = ("class_name",)

    def __init__(self, class_name):
        super().__init__([], st.ref_stamp(class_name, exact=True, non_null=True))
        self.class_name = class_name

    def brief(self):
        return "New(%s)" % self.class_name


class NewArrayNode(Node):
    """Array allocation; input 0 is the length."""

    __slots__ = ("elem_type",)

    def __init__(self, elem_type, length):
        super().__init__(
            [length],
            st.ref_stamp(elem_type + "[]", exact=True, non_null=True),
        )
        self.elem_type = elem_type

    def brief(self):
        return "NewArray(%s)" % self.elem_type


class ArrayLoadNode(Node):
    """inputs: array, index."""

    def __init__(self, array, index, stamp):
        super().__init__([array, index], stamp)


class ArrayStoreNode(Node):
    """inputs: array, index, value."""

    def __init__(self, array, index, value):
        super().__init__([array, index, value], st.void_stamp())


class ArrayLengthNode(Node):
    """inputs: array. Pure apart from the null check, which we treat as
    a guard folded into the node (it cannot be reordered past stores,
    but duplicate lengths of the same array can be value-numbered)."""

    def __init__(self, array):
        super().__init__([array], st.int_stamp())

    def value_number_key(self):
        return ("arraylen", self.inputs[0].id)


class LoadFieldNode(Node):
    """inputs: object."""

    __slots__ = ("class_name", "field_name")

    def __init__(self, obj, class_name, field_name, stamp):
        super().__init__([obj], stamp)
        self.class_name = class_name
        self.field_name = field_name

    def brief(self):
        return "LoadField(%s)" % self.field_name


class StoreFieldNode(Node):
    """inputs: object, value."""

    __slots__ = ("class_name", "field_name")

    def __init__(self, obj, class_name, field_name, value):
        super().__init__([obj, value], st.void_stamp())
        self.class_name = class_name
        self.field_name = field_name

    def brief(self):
        return "StoreField(%s)" % self.field_name


class LoadStaticNode(Node):
    __slots__ = ("class_name", "field_name")

    def __init__(self, class_name, field_name, stamp):
        super().__init__([], stamp)
        self.class_name = class_name
        self.field_name = field_name

    def brief(self):
        return "LoadStatic(%s.%s)" % (self.class_name, self.field_name)


class StoreStaticNode(Node):
    __slots__ = ("class_name", "field_name")

    def __init__(self, class_name, field_name, value):
        super().__init__([value], st.void_stamp())
        self.class_name = class_name
        self.field_name = field_name

    def brief(self):
        return "StoreStatic(%s.%s)" % (self.class_name, self.field_name)


# ---------------------------------------------------------------------------
# Type tests
# ---------------------------------------------------------------------------


class InstanceOfNode(Node):
    """``value instanceof type`` producing 0/1; inputs: value.

    With ``exact`` set the test is an exact-class check (used for
    typeswitch guards emitted by polymorphic inlining, §IV), otherwise a
    subtype test (source-level ``is`` operator).
    """

    __slots__ = ("type_name", "exact")
    is_pure = True

    def __init__(self, value, type_name, exact=False):
        super().__init__([value], st.int_stamp())
        self.type_name = type_name
        self.exact = exact

    def value_number_key(self):
        return ("instanceof", self.type_name, self.exact, self.inputs[0].id)

    def brief(self):
        return "Is%s(%s)" % ("Exactly" if self.exact else "", self.type_name)


class CheckCastNode(Node):
    """Checked cast; passes its input through with a refined stamp."""

    __slots__ = ("type_name",)

    def __init__(self, value, type_name, program=None):
        refined = value.stamp.join(st.ref_stamp(type_name), program)
        if refined.kind == st.Stamp.BOTTOM:
            refined = st.ref_stamp(type_name)
        super().__init__([value], refined)
        self.type_name = type_name

    def value_number_key(self):
        return ("checkcast", self.type_name, self.inputs[0].id)

    def brief(self):
        return "Cast(%s)" % self.type_name


class PiNode(Node):
    """A stamp-refinement marker: same value as input, narrower stamp.

    Emitted when control flow proves a fact (e.g. inside the true branch
    of an exact type check). Guards carry no machine code — lowering
    erases them — but they let canonicalization devirtualize.
    """

    is_pure = True

    def __init__(self, value, stamp):
        super().__init__([value], stamp)

    def value_number_key(self):
        return ("pi", self.stamp, self.inputs[0].id)

    def brief(self):
        return "Pi[%s]" % (self.stamp,)


# ---------------------------------------------------------------------------
# Calls
# ---------------------------------------------------------------------------


class InvokeNode(Node):
    """A call; inputs are the arguments (receiver first if any).

    Attributes:
        kind: ``"static"``, ``"special"``, ``"virtual"``, ``"interface"``
            or ``"direct"`` (a devirtualized virtual call bound to
            ``target``).
        declared_class / method_name: the symbolic reference.
        target: the resolved :class:`~repro.bytecode.method.Method` for
            static/special/direct kinds; None for dispatched kinds.
        receiver_types: profile snapshot ``[(class_name, probability)]``
            for dispatched kinds (may be empty).
        megamorphic: receiver profile overflowed.
        bci: bytecode index of the callsite in its original method —
            stable identity used by the call tree.
        frequency: relative execution frequency of the callsite within
            its method (filled by frequency annotation).
        n_args: number of leading inputs that are call arguments; any
            further inputs are captured frame state (speculative
            compilation only — see ``append_frame_state``).
        frames: :class:`~repro.deopt.FrameDescriptor` list describing
            the state inputs, innermost frame first.  Empty unless the
            graph was built for speculation.
    """

    __slots__ = (
        "kind",
        "declared_class",
        "method_name",
        "target",
        "receiver_types",
        "megamorphic",
        "bci",
        "frequency",
        "n_args",
        "frames",
    )

    KINDS = ("static", "special", "virtual", "interface", "direct")

    def __init__(
        self,
        kind,
        declared_class,
        method_name,
        args,
        stamp,
        target=None,
        receiver_types=(),
        megamorphic=False,
        bci=-1,
    ):
        super().__init__(args, stamp)
        assert kind in InvokeNode.KINDS, kind
        self.kind = kind
        self.declared_class = declared_class
        self.method_name = method_name
        self.target = target
        self.receiver_types = list(receiver_types)
        self.megamorphic = megamorphic
        self.bci = bci
        self.frequency = 1.0
        self.n_args = len(self.inputs)
        self.frames = []

    @property
    def args(self):
        """The call arguments (inputs minus any frame state)."""
        return self.inputs[: self.n_args]

    @property
    def state_values(self):
        """Captured frame-state inputs (empty without speculation)."""
        return self.inputs[self.n_args :]

    def append_frame_state(self, values, frames):
        """Attach frame state as real SSA inputs after the arguments.

        Keeping state values in ``inputs`` means ``replace_uses``,
        graph copying and DCE liveness all see them for free; consumers
        of the *arguments* must slice with ``n_args`` (or use
        ``args``).
        """
        for value in values:
            self.inputs.append(value)
            if value is not None:  # undefined local on this path
                value.uses.add(self)
        self.frames = self.frames + list(frames)

    @property
    def is_dispatched(self):
        return self.kind in ("virtual", "interface")

    @property
    def has_receiver(self):
        return self.kind != "static"

    def receiver(self):
        return self.inputs[0] if self.has_receiver else None

    def devirtualize(self, target):
        """Rebind this dispatched call as a direct call to *target*."""
        self.kind = "direct"
        self.target = target

    def brief(self):
        name = "%s.%s" % (self.declared_class, self.method_name)
        return "Invoke<%s>(%s)" % (self.kind, name)


class GuardNode(Node):
    """A speculation check: deoptimize unless the condition is true.

    Input 0 is the condition; the remaining inputs are frame state
    described by ``frames`` (same layout as on :class:`InvokeNode`).
    Not pure — DCE must keep it — and a barrier for effect reordering:
    moving a store across a guard would leak speculative state into the
    interpreter frame rebuilt on failure.

    Canonicalization deletes guards whose condition folds to a non-zero
    constant; that is what lets a speculated typeswitch lose its
    fallback arm entirely.
    """

    __slots__ = ("reason", "frames")

    def __init__(self, condition, reason, frames=(), state=()):
        super().__init__([condition] + list(state), st.void_stamp())
        self.reason = reason
        self.frames = list(frames)

    def condition(self):
        return self.inputs[0]

    @property
    def state_values(self):
        return self.inputs[1:]

    def append_frame_state(self, values, frames):
        for value in values:
            self.inputs.append(value)
            if value is not None:  # undefined local on this path
                value.uses.add(self)
        self.frames = self.frames + list(frames)

    @property
    def site(self):
        """(qualified name, bci) of the speculation being protected."""
        return self.frames[0].site if self.frames else None

    def brief(self):
        return "Guard(%s)" % self.reason


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


class TerminatorNode(Node):
    is_terminator = True

    def successors(self):
        return []


class IfNode(TerminatorNode):
    """Conditional branch; input 0 is the condition (0 = false).

    ``probability`` is the profiled probability of taking the *true*
    successor (0.5 when no profile exists).
    """

    __slots__ = ("true_block", "false_block", "probability")

    def __init__(self, condition, true_block, false_block, probability=0.5):
        super().__init__([condition], st.void_stamp())
        self.true_block = true_block
        self.false_block = false_block
        self.probability = probability

    def successors(self):
        return [self.true_block, self.false_block]

    def replace_successor(self, old, new):
        if self.true_block is old:
            self.true_block = new
        if self.false_block is old:
            self.false_block = new

    def brief(self):
        return "If(p=%.2f)" % self.probability


class GotoNode(TerminatorNode):
    __slots__ = ("target",)

    def __init__(self, target):
        super().__init__([], st.void_stamp())
        self.target = target

    def successors(self):
        return [self.target]

    def replace_successor(self, old, new):
        if self.target is old:
            self.target = new

    def brief(self):
        return "Goto"


class ReturnNode(TerminatorNode):
    """Method return; input 0 is the value (absent for void)."""

    def __init__(self, value=None):
        super().__init__([value] if value is not None else [], st.void_stamp())

    def value(self):
        return self.inputs[0] if self.inputs else None

    def brief(self):
        return "Return"


class DeoptNode(TerminatorNode):
    """Unconditional transfer to the interpreter; ends its block.

    Emitted where a speculated typeswitch would otherwise fall back to
    a virtual dispatch: reaching this point means every speculated
    receiver check failed, so compiled execution abandons the frame.
    All inputs are frame state described by ``frames`` (innermost
    first); having no successors, a deopt block never feeds the merge,
    which is how the megamorphic path disappears from the graph.
    """

    __slots__ = ("reason", "frames")

    def __init__(self, reason, frames=(), state=()):
        super().__init__(list(state), st.void_stamp())
        self.reason = reason
        self.frames = list(frames)

    @property
    def state_values(self):
        return list(self.inputs)

    def append_frame_state(self, values, frames):
        for value in values:
            self.inputs.append(value)
            if value is not None:  # undefined local on this path
                value.uses.add(self)
        self.frames = self.frames + list(frames)

    @property
    def site(self):
        return self.frames[0].site if self.frames else None

    def brief(self):
        return "Deopt(%s)" % self.reason
